//! Exact EPP by weighted exhaustive enumeration — the oracle the
//! analytical rules are validated against.
//!
//! For a given error site, enumerate every assignment of the circuit's
//! sources, simulate the fault-free and faulty circuits, and accumulate
//! the exact probability that the erroneous value reaches each observe
//! point (split by polarity) and the exact `P_sensitized`. Exponential
//! in the source count; guarded by a limit.

use ser_netlist::{Circuit, NodeId, ObservePoint};
use ser_sim::{BitSim, ExhaustivePatterns, PatternSource, SiteFaultSim};
use ser_sp::{InputProbs, SpError};

use crate::engine::combine_sensitization;
use crate::four_value::FourValue;

/// Exact per-observe-point arrival probabilities for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSiteEpp {
    /// The error site.
    pub site: NodeId,
    /// Exact `(point, Pa, Pā)` triples for every reachable observe point.
    pub per_point: Vec<(ObservePoint, f64, f64)>,
    /// Exact probability that at least one observe point sees the error.
    pub p_sensitized: f64,
}

impl ExactSiteEpp {
    /// Exact arrival probability `Pa + Pā` at `signal`, if reachable.
    #[must_use]
    pub fn arrival_at(&self, signal: NodeId) -> Option<f64> {
        self.per_point
            .iter()
            .find(|(p, _, _)| p.signal() == signal)
            .map(|&(_, pa, pab)| pa + pab)
    }

    /// What the paper's independence combination would give on the
    /// *exact* per-point arrivals (isolates the error contributed by
    /// the output-independence assumption alone).
    #[must_use]
    pub fn p_sensitized_if_outputs_independent(&self) -> f64 {
        combine_sensitization(self.per_point.iter().map(|&(_, pa, pab)| pa + pab))
    }
}

/// The exact EPP oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactEpp {
    max_sources: usize,
}

impl ExactEpp {
    /// Creates the oracle with the default source limit (22 → at most
    /// ~4M assignments per site).
    #[must_use]
    pub fn new() -> Self {
        ExactEpp { max_sources: 22 }
    }

    /// Adjusts the source-count limit.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    #[must_use]
    pub fn with_max_sources(mut self, n: usize) -> Self {
        assert!((1..=63).contains(&n), "limit must be 1..=63");
        self.max_sources = n;
        self
    }

    /// Computes the exact EPP of `site` under the input distribution.
    ///
    /// Flip-flop outputs are enumerated as free 0.5-probability sources
    /// (the combinational single-cycle view, matching the analytical
    /// engine).
    ///
    /// # Errors
    ///
    /// [`SpError::TooManySources`] if the circuit has more sources than
    /// the limit; [`SpError::Netlist`] if it cannot be simulated.
    pub fn site(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        site: NodeId,
    ) -> Result<ExactSiteEpp, SpError> {
        let sim = BitSim::new(circuit)?;
        self.site_with_sim(&sim, inputs, site)
    }

    /// Like [`site`](Self::site) but reusing a compiled simulator
    /// (e.g. the one cached by an
    /// [`AnalysisSession`](crate::AnalysisSession)), so repeated oracle
    /// queries skip the per-call topological sort.
    ///
    /// # Errors
    ///
    /// [`SpError::TooManySources`] if the circuit has more sources than
    /// the limit.
    pub fn site_with_sim(
        &self,
        sim: &BitSim,
        inputs: &InputProbs,
        site: NodeId,
    ) -> Result<ExactSiteEpp, SpError> {
        let circuit = sim.circuit();
        let sources: Vec<NodeId> = sim.sources().to_vec();
        if sources.len() > self.max_sources {
            return Err(SpError::TooManySources {
                got: sources.len(),
                limit: self.max_sources,
            });
        }
        let source_p: Vec<f64> = sources
            .iter()
            .map(|&s| {
                if circuit.inputs().contains(&s) {
                    inputs.probability(s)
                } else {
                    0.5
                }
            })
            .collect();
        let fault = SiteFaultSim::new(sim, site);
        let mut good = vec![0u64; circuit.len()];
        let mut scratch = vec![0u64; circuit.len()];
        let mut p_sens = 0.0f64;
        let mut acc: Vec<(ObservePoint, f64, f64)> = fault
            .observe_points()
            .iter()
            .map(|&p| (p, 0.0, 0.0))
            .collect();
        let mut patterns = ExhaustivePatterns::new(sources.len());
        while let Some(block) = patterns.next_block() {
            sim.run_into(block.words(), &mut good);
            scratch.copy_from_slice(&good);
            let outcome = fault.inject(sim, &good, &mut scratch);
            for p in 0..block.count() {
                let mut w = 1.0f64;
                for (s, &ps) in source_p.iter().enumerate() {
                    w *= if block.bit(s, p) { ps } else { 1.0 - ps };
                }
                if w == 0.0 {
                    continue;
                }
                if outcome.any_diff >> p & 1 != 0 {
                    p_sens += w;
                }
                for (slot, masks) in acc.iter_mut().zip(&outcome.per_point) {
                    if masks.even >> p & 1 != 0 {
                        slot.1 += w;
                    }
                    if masks.odd >> p & 1 != 0 {
                        slot.2 += w;
                    }
                }
            }
        }
        Ok(ExactSiteEpp {
            site,
            per_point: acc,
            p_sensitized: p_sens.clamp(0.0, 1.0),
        })
    }

    /// Exact four-value tuple at one observed signal (diagnostic helper
    /// for rule-level comparisons): returns `(Pa, Pā, P0, P1)` where the
    /// blocked cases are split by the signal's fault-free value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`site`](Self::site).
    pub fn tuple_at(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        site: NodeId,
        signal: NodeId,
    ) -> Result<FourValue, SpError> {
        let sim = BitSim::new(circuit)?;
        let sources: Vec<NodeId> = sim.sources().to_vec();
        if sources.len() > self.max_sources {
            return Err(SpError::TooManySources {
                got: sources.len(),
                limit: self.max_sources,
            });
        }
        let source_p: Vec<f64> = sources
            .iter()
            .map(|&s| {
                if circuit.inputs().contains(&s) {
                    inputs.probability(s)
                } else {
                    0.5
                }
            })
            .collect();
        let mut good = vec![0u64; circuit.len()];
        let mut scratch = vec![0u64; circuit.len()];
        let (mut pa, mut pab, mut p0, mut p1) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut patterns = ExhaustivePatterns::new(sources.len());
        while let Some(block) = patterns.next_block() {
            sim.run_into(block.words(), &mut good);
            scratch.copy_from_slice(&good);
            // Re-derive the faulty value of `signal` per pattern.
            scratch[site.index()] = !good[site.index()];
            let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
            let cone = ser_netlist::FanoutCone::extract(circuit, site);
            for &id in sim.schedule() {
                if id == site || !cone.contains(id) {
                    continue;
                }
                let node = circuit.node(id);
                if node.kind() == ser_netlist::GateKind::Dff {
                    continue;
                }
                fanin_buf.clear();
                fanin_buf.extend(node.fanin().iter().map(|f| scratch[f.index()]));
                scratch[id.index()] = node.kind().eval_word(&fanin_buf);
            }
            let faulty_sig = scratch[signal.index()];
            let good_sig = good[signal.index()];
            let a_val = !good[site.index()];
            for p in 0..block.count() {
                let mut w = 1.0f64;
                for (s, &ps) in source_p.iter().enumerate() {
                    w *= if block.bit(s, p) { ps } else { 1.0 - ps };
                }
                if w == 0.0 {
                    continue;
                }
                let differs = (good_sig ^ faulty_sig) >> p & 1 != 0;
                if differs {
                    let matches_a = ((faulty_sig ^ a_val) >> p) & 1 == 0;
                    if matches_a {
                        pa += w;
                    } else {
                        pab += w;
                    }
                } else if faulty_sig >> p & 1 != 0 {
                    p1 += w;
                } else {
                    p0 += w;
                }
            }
            // Restore scratch.
            scratch.copy_from_slice(&good);
        }
        Ok(FourValue::new_clamped(pa, pab, p0, p1))
    }
}

impl Default for ExactEpp {
    fn default() -> Self {
        ExactEpp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EppAnalysis;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, SpEngine};

    #[test]
    fn exact_matches_analytical_on_tree() {
        // Fanout-free circuit: the analytical rules are exact.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "tree",
        )
        .unwrap();
        let probs = InputProbs::uniform(0.5);
        let sp = IndependentSp::new().compute(&c, &probs).unwrap();
        let epp = EppAnalysis::new(&c, sp).unwrap();
        let a = c.find("a").unwrap();
        let analytical = epp.site(a);
        let exact = ExactEpp::new().site(&c, &probs, a).unwrap();
        assert!(
            (analytical.p_sensitized() - exact.p_sensitized).abs() < 1e-12,
            "analytical {} vs exact {}",
            analytical.p_sensitized(),
            exact.p_sensitized
        );
    }

    #[test]
    fn exact_detects_reconvergence_error() {
        // Reconvergent AND-AND-OR where the analytical method's
        // independence assumption bites: same-signal reconvergence.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = AND(a, b)\nv = OR(a, b)\ny = AND(u, v)\n",
            "recon",
        )
        .unwrap();
        let probs = InputProbs::uniform(0.5);
        let b = c.find("b").unwrap();
        let exact = ExactEpp::new().site(&c, &probs, b).unwrap();
        // Enumerate by hand: flip b; y = AND(AND(a,b), OR(a,b)) = a AND b.
        // y_good = a·b, y_fault = a·(¬b); differs iff a=1. P = 0.5.
        assert!((exact.p_sensitized - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tuple_at_matches_site_arrival() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "t").unwrap();
        let probs = InputProbs::uniform(0.5);
        let a = c.find("a").unwrap();
        let y = c.find("y").unwrap();
        let site = ExactEpp::new().site(&c, &probs, a).unwrap();
        let tuple = ExactEpp::new().tuple_at(&c, &probs, a, y).unwrap();
        assert!((tuple.p_arrival() - site.arrival_at(y).unwrap()).abs() < 1e-12);
        // NAND: error passes iff b=1 (P=0.5), with odd parity.
        assert!((tuple.pa_bar() - 0.5).abs() < 1e-12);
        assert_eq!(tuple.pa(), 0.0);
        assert!((tuple.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn source_limit_enforced() {
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = OR(");
        src.push_str(
            &(0..30)
                .map(|i| format!("i{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(")\n");
        let c = parse_bench(&src, "wide").unwrap();
        let y = c.find("y").unwrap();
        let err = ExactEpp::new()
            .site(&c, &InputProbs::default(), y)
            .unwrap_err();
        assert!(matches!(err, SpError::TooManySources { got: 30, .. }));
    }

    #[test]
    fn weighted_inputs_exact_epp() {
        // AND gate, side input probability 0.9: P_sens(a) = 0.9 exactly.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "w").unwrap();
        let b = c.find("b").unwrap();
        let a = c.find("a").unwrap();
        let probs = InputProbs::uniform(0.5).with(b, 0.9);
        let exact = ExactEpp::new().site(&c, &probs, a).unwrap();
        assert!((exact.p_sensitized - 0.9).abs() < 1e-12);
    }

    #[test]
    fn output_independence_diagnostic() {
        // Two outputs observing the SAME gated path: y1 = AND(a,b),
        // y2 = BUF(y1). Exact joint P_sens = 0.5, but combining the two
        // exact per-point arrivals as if independent gives 0.75.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = BUF(y1)\n",
            "dep",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let exact = ExactEpp::new().site(&c, &InputProbs::default(), a).unwrap();
        assert!((exact.p_sensitized - 0.5).abs() < 1e-12);
        assert!((exact.p_sensitized_if_outputs_independent() - 0.75).abs() < 1e-12);
    }
}
