//! Exact EPP via BDDs — the oracle without the input-count wall.
//!
//! For an error site `n`, build the fault-free functions of every node,
//! then rebuild the site's fanout cone with the site's function
//! complemented (the SEU). For each observe point `j`,
//! `diff_j = good_j ⊕ faulty_j` is *the exact boolean condition* under
//! which the error is visible there, and `P(diff_j)` its exact arrival
//! probability — polarity-split via `faulty_j ≡ ¬good_n`. The union
//! `OR_j diff_j` gives exact `P_sensitized`, correlations between
//! outputs included (no independence assumption anywhere).

use ser_netlist::{Circuit, FanoutCone, GateKind, NodeId, ObservePoint};
use ser_sp::bdd::{Bdd, BddOverflow, BddRef};
use ser_sp::{BddSp, InputProbs, SpError};

use crate::exact::ExactSiteEpp;

/// The BDD-backed exact EPP oracle.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::InputProbs;
/// use ser_epp::BddExactEpp;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let a = c.find("a").unwrap();
/// let exact = BddExactEpp::new().site(&c, &InputProbs::uniform(0.5), a)?;
/// assert!((exact.p_sensitized - 0.5).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddExactEpp {
    node_limit: usize,
}

impl BddExactEpp {
    /// Creates the oracle with the default BDD node limit (2^21).
    #[must_use]
    pub fn new() -> Self {
        BddExactEpp {
            node_limit: 1 << 21,
        }
    }

    /// Adjusts the BDD node limit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_node_limit(mut self, n: usize) -> Self {
        assert!(n >= 2, "limit must hold the constants");
        self.node_limit = n;
        self
    }

    /// Exact EPP for one error site.
    ///
    /// # Errors
    ///
    /// [`SpError::CircuitTooLarge`] when the BDD node limit is hit,
    /// [`SpError::Netlist`] for structurally invalid circuits.
    pub fn site(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        site: NodeId,
    ) -> Result<ExactSiteEpp, SpError> {
        let order = ser_netlist::topo_order(circuit)?;
        self.site_with_order(circuit, inputs, site, &order)
    }

    /// Like [`site`](Self::site) but reusing a topological order the
    /// caller already has (e.g. cached by an
    /// [`AnalysisSession`](crate::AnalysisSession)).
    ///
    /// # Errors
    ///
    /// [`SpError::CircuitTooLarge`] when the BDD node limit is hit.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `order` is not a topological order of
    /// `circuit`.
    pub fn site_with_order(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        site: NodeId,
        order: &[NodeId],
    ) -> Result<ExactSiteEpp, SpError> {
        debug_assert!(
            ser_netlist::is_topo_order(circuit, order),
            "caller-provided order must be a topological order of the circuit"
        );
        let (mut m, good, var_probs) = BddSp::new()
            .with_node_limit(self.node_limit)
            .build(circuit, inputs)?;
        let overflow = |_: BddOverflow| SpError::CircuitTooLarge {
            nodes: self.node_limit,
            limit: self.node_limit,
        };

        // Faulty functions over the cone.
        let cone = FanoutCone::extract(circuit, site);
        let mut faulty = good.clone();
        faulty[site.index()] = m.not(good[site.index()]).map_err(overflow)?;
        for &id in order {
            if id == site || !cone.contains(id) {
                continue;
            }
            let node = circuit.node(id);
            if !node.kind().is_logic() {
                continue;
            }
            let fanins: Vec<BddRef> = node.fanin().iter().map(|f| faulty[f.index()]).collect();
            faulty[id.index()] = apply_gate(&mut m, node.kind(), &fanins).map_err(overflow)?;
        }

        // The injected erroneous value a = ¬good(site).
        let a_val = faulty[site.index()];
        let mut any = BddRef::FALSE;
        let mut per_point: Vec<(ObservePoint, f64, f64)> = Vec::new();
        for point in cone.observe_points() {
            let sig = point.signal().index();
            let diff = m.xor(good[sig], faulty[sig]).map_err(overflow)?;
            any = m.or(any, diff).map_err(overflow)?;
            // Even parity: faulty value equals `a`.
            let matches_a = {
                let x = m.xor(faulty[sig], a_val).map_err(overflow)?;
                m.not(x).map_err(overflow)?
            };
            let even = m.and(diff, matches_a).map_err(overflow)?;
            let not_matches = m.not(matches_a).map_err(overflow)?;
            let odd = m.and(diff, not_matches).map_err(overflow)?;
            per_point.push((
                *point,
                m.probability(even, &var_probs),
                m.probability(odd, &var_probs),
            ));
        }
        Ok(ExactSiteEpp {
            site,
            per_point,
            p_sensitized: m.probability(any, &var_probs).clamp(0.0, 1.0),
        })
    }
}

impl Default for BddExactEpp {
    fn default() -> Self {
        BddExactEpp::new()
    }
}

fn apply_gate(m: &mut Bdd, kind: GateKind, fanins: &[BddRef]) -> Result<BddRef, BddOverflow> {
    let fold_and = |m: &mut Bdd| -> Result<BddRef, BddOverflow> {
        let mut acc = fanins[0];
        for &f in &fanins[1..] {
            acc = m.and(acc, f)?;
        }
        Ok(acc)
    };
    let fold_or = |m: &mut Bdd| -> Result<BddRef, BddOverflow> {
        let mut acc = fanins[0];
        for &f in &fanins[1..] {
            acc = m.or(acc, f)?;
        }
        Ok(acc)
    };
    let fold_xor = |m: &mut Bdd| -> Result<BddRef, BddOverflow> {
        let mut acc = fanins[0];
        for &f in &fanins[1..] {
            acc = m.xor(acc, f)?;
        }
        Ok(acc)
    };
    match kind {
        GateKind::Buf => Ok(fanins[0]),
        GateKind::Not => m.not(fanins[0]),
        GateKind::And => fold_and(m),
        GateKind::Nand => {
            let x = fold_and(m)?;
            m.not(x)
        }
        GateKind::Or => fold_or(m),
        GateKind::Nor => {
            let x = fold_or(m)?;
            m.not(x)
        }
        GateKind::Xor => fold_xor(m),
        GateKind::Xnor => {
            let x = fold_xor(m)?;
            m.not(x)
        }
        GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {
            unreachable!("sources are never recomputed in the cone")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactEpp;
    use ser_netlist::parse_bench;

    #[test]
    fn agrees_with_enumeration_oracle() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\nu = NAND(a, b)\nv = NOR(u, c)\ny = XOR(a, v)\nz = AND(u, c)\n",
            "mix",
        )
        .unwrap();
        let probs = InputProbs::uniform(0.5);
        let bdd = BddExactEpp::new();
        let enumr = ExactEpp::new();
        for id in c.node_ids() {
            let x = bdd.site(&c, &probs, id).unwrap();
            let e = enumr.site(&c, &probs, id).unwrap();
            assert!(
                (x.p_sensitized - e.p_sensitized).abs() < 1e-12,
                "site {id}: bdd {} vs enum {}",
                x.p_sensitized,
                e.p_sensitized
            );
            for ((pp, pa, pab), (ep, ea, eab)) in x.per_point.iter().zip(&e.per_point) {
                assert_eq!(pp.signal(), ep.signal());
                assert!((pa - ea).abs() < 1e-12, "Pa at {:?}", pp);
                assert!((pab - eab).abs() < 1e-12, "Pā at {:?}", pp);
            }
        }
    }

    #[test]
    fn scales_past_enumeration() {
        // 30-input OR tree: enumeration refuses, BDD instant.
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = OR(");
        src.push_str(
            &(0..30)
                .map(|i| format!("i{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(")\n");
        let c = parse_bench(&src, "or30").unwrap();
        let probs = InputProbs::default();
        let site = c.find("i0").unwrap();
        assert!(ExactEpp::new().site(&c, &probs, site).is_err());
        let exact = BddExactEpp::new().site(&c, &probs, site).unwrap();
        // Error on i0 propagates iff all other 29 inputs are 0.
        assert!((exact.p_sensitized - 0.5f64.powi(29)).abs() < 1e-15);
    }

    #[test]
    fn weighted_inputs() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "w").unwrap();
        let b = c.find("b").unwrap();
        let a = c.find("a").unwrap();
        let probs = InputProbs::uniform(0.5).with(b, 0.9);
        let exact = BddExactEpp::new().site(&c, &probs, a).unwrap();
        assert!((exact.p_sensitized - 0.9).abs() < 1e-12);
    }

    #[test]
    fn polarity_split_exact() {
        // NAND passes with odd parity.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "n").unwrap();
        let a = c.find("a").unwrap();
        let exact = BddExactEpp::new()
            .site(&c, &InputProbs::default(), a)
            .unwrap();
        let (_, pa, pab) = exact.per_point[0];
        assert_eq!(pa, 0.0);
        assert!((pab - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_limit_respected() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "t",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let err = BddExactEpp::new()
            .with_node_limit(4)
            .site(&c, &InputProbs::default(), a)
            .unwrap_err();
        assert!(matches!(err, SpError::CircuitTooLarge { .. }));
    }
}
