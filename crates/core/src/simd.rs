//! The `f64x4` lane-vector abstraction behind the sweep kernel: an
//! AVX2 `__m256d` backend and a plain-array scalar twin behind one
//! API, selected **once per sweep** at runtime.
//!
//! The fused Table-1 rule cores ([`crate::rules`]) operate on 4-wide
//! lane arrays `[Pa, Pā, P0, P1]`. Everything they need is expressible
//! as *lane-wise* multiplies/adds plus *shuffles* of whole vectors —
//! no horizontal reduction, no FMA — so the AVX2 backend performs
//! exactly the scalar instruction sequence per lane and the two
//! backends are bit-identical by construction (see the README's "SIMD
//! kernel" section for the argument; `tests/sweep_equivalence.rs`
//! enforces it with a forced-backend proptest).
//!
//! Backend policy:
//!
//! - [`KernelBackend::auto`] picks AVX2 when
//!   `is_x86_feature_detected!("avx2")` holds, scalar otherwise.
//! - The `SER_SIMD` env var overrides: `off` (or `scalar`) forces the
//!   scalar twin, `avx2` requests AVX2 (silently degraded to scalar on
//!   hosts without it, so the variable is safe to export globally).
//! - Non-x86 targets compile the scalar twin only; no compile-time
//!   `target-feature` flags are required anywhere.

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_blend_pd, _mm256_load_pd, _mm256_max_pd, _mm256_min_pd,
    _mm256_mul_pd, _mm256_permute4x64_pd, _mm256_set1_pd, _mm256_store_pd, _mm256_sub_pd,
};

/// One `(Pa, Pā, P0, P1)` tuple as a 32-byte-aligned lane array — the
/// memory shape of every sweep plane, so a plane slot is exactly one
/// aligned `vmovapd` for the AVX2 backend (and an ordinary `[f64; 4]`
/// for the scalar twin).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(C, align(32))]
pub(crate) struct Lane4(pub(crate) [f64; 4]);

/// Packs four 2-bit lane selectors into the `imm8` shuffle control the
/// backends share: result lane `k` takes source lane `ik`. Mirrors
/// `_mm256_permute4x64_pd`'s encoding so the scalar twin and the AVX2
/// intrinsic decode the same constant.
pub(crate) const fn imm4(i0: u32, i1: u32, i2: u32, i3: u32) -> i32 {
    (i0 | (i1 << 2) | (i2 << 4) | (i3 << 6)) as i32
}

/// The lane-vector operations the fused rule cores are generic over.
///
/// Every method is a *vertical* (lane-wise) operation or a whole-vector
/// shuffle: implementations must not reassociate across lanes, use FMA,
/// or otherwise change the per-lane rounding — the sweep's bit-identity
/// contract against the per-site reference rests on each lane seeing
/// exactly the scalar operation sequence.
pub(crate) trait LaneVec: Copy {
    /// Aligned 32-byte load of one plane slot.
    fn load(src: &Lane4) -> Self;
    /// Aligned 32-byte store back to the plane shape.
    fn store(self) -> Lane4;
    /// All four lanes set to `x`.
    fn splat(x: f64) -> Self;
    /// All four lanes zero.
    fn zero() -> Self;
    /// Lane-wise product (`vmulpd`).
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise sum (`vaddpd`).
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise difference (`vsubpd`).
    fn sub(self, rhs: Self) -> Self;
    /// Full 4-lane shuffle: result lane `k` is source lane
    /// `(IMM8 >> 2k) & 3` (the `_mm256_permute4x64_pd` encoding; build
    /// `IMM8` with [`imm4`]).
    fn permute<const IMM8: i32>(self) -> Self;
    /// Lane blend: lane `k` comes from `other` when bit `k` of `MASK`
    /// is set, from `self` otherwise (the `_mm256_blend_pd` encoding).
    fn blend<const MASK: i32>(self, other: Self) -> Self;
    /// Lane-wise clamp into `[0, 1]` — the vector form of
    /// `FourValue::new_clamped`'s per-component clamp. Identical to the
    /// scalar clamp for every non-NaN input (NaN lanes cannot occur:
    /// tuples are finite by construction).
    fn clamp01(self) -> Self;
}

/// The plain-array twin: the same API over `[f64; 4]`, one scalar op
/// per lane. This is the only backend compiled on non-x86 targets and
/// the `SER_SIMD=off` fallback everywhere.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScalarVec([f64; 4]);

impl LaneVec for ScalarVec {
    #[inline(always)]
    fn load(src: &Lane4) -> Self {
        ScalarVec(src.0)
    }

    #[inline(always)]
    fn store(self) -> Lane4 {
        Lane4(self.0)
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        ScalarVec([x; 4])
    }

    #[inline(always)]
    fn zero() -> Self {
        ScalarVec([0.0; 4])
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let (a, b) = (self.0, rhs.0);
        ScalarVec([a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]])
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let (a, b) = (self.0, rhs.0);
        ScalarVec([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let (a, b) = (self.0, rhs.0);
        ScalarVec([a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]])
    }

    #[inline(always)]
    fn permute<const IMM8: i32>(self) -> Self {
        let lane = |k: i32| self.0[((IMM8 >> (2 * k)) & 3) as usize];
        ScalarVec([lane(0), lane(1), lane(2), lane(3)])
    }

    #[inline(always)]
    fn blend<const MASK: i32>(self, other: Self) -> Self {
        let lane = |k: i32| {
            if (MASK >> k) & 1 == 1 {
                other.0[k as usize]
            } else {
                self.0[k as usize]
            }
        };
        ScalarVec([lane(0), lane(1), lane(2), lane(3)])
    }

    #[inline(always)]
    fn clamp01(self) -> Self {
        let a = self.0;
        ScalarVec([
            a[0].clamp(0.0, 1.0),
            a[1].clamp(0.0, 1.0),
            a[2].clamp(0.0, 1.0),
            a[3].clamp(0.0, 1.0),
        ])
    }
}

/// The AVX2 backend: one `__m256d` per tuple, one instruction per op.
///
/// Methods are *not* individually `#[target_feature]`-annotated: the
/// kernel's single `#[target_feature(enable = "avx2")]` entry point
/// (`plan_kernel_avx2` in `sweep.rs`) is the feature boundary, and
/// every helper between it and these intrinsics is `#[inline(always)]`
/// so the whole kernel collapses into that one function. Constructing
/// or using this type outside such an entry point is unsound — which
/// is why the type, like the whole trait, is crate-private and only
/// ever instantiated behind a runtime AVX2 check.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub(crate) struct AvxVec(__m256d);

#[cfg(target_arch = "x86_64")]
impl std::fmt::Debug for AvxVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AvxVec").field(&self.store().0).finish()
    }
}

#[cfg(target_arch = "x86_64")]
impl LaneVec for AvxVec {
    #[inline(always)]
    fn load(src: &Lane4) -> Self {
        // SAFETY: `Lane4` is `repr(C, align(32))`, so the pointer is
        // valid for a 32-byte aligned read of four f64s. The AVX2
        // requirement is met by the kernel's `target_feature` entry
        // point (see the type-level comment).
        AvxVec(unsafe { _mm256_load_pd(src.0.as_ptr()) })
    }

    #[inline(always)]
    fn store(self) -> Lane4 {
        let mut out = Lane4([0.0; 4]);
        // SAFETY: as in `load` — aligned, in-bounds, AVX2 guaranteed by
        // the kernel entry point.
        unsafe { _mm256_store_pd(out.0.as_mut_ptr(), self.0) };
        out
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: no memory access; AVX2 guaranteed by the entry point.
        AvxVec(unsafe { _mm256_set1_pd(x) })
    }

    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0.0)
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: register-only `vmulpd`; AVX2 guaranteed by the entry
        // point.
        AvxVec(unsafe { _mm256_mul_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: register-only `vaddpd`; AVX2 guaranteed by the entry
        // point.
        AvxVec(unsafe { _mm256_add_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: register-only `vsubpd`; AVX2 guaranteed by the entry
        // point.
        AvxVec(unsafe { _mm256_sub_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn permute<const IMM8: i32>(self) -> Self {
        // SAFETY: register-only `vpermpd`; AVX2 guaranteed by the entry
        // point.
        AvxVec(unsafe { _mm256_permute4x64_pd::<IMM8>(self.0) })
    }

    #[inline(always)]
    fn blend<const MASK: i32>(self, other: Self) -> Self {
        // SAFETY: register-only `vblendpd`; AVX2 guaranteed by the
        // entry point.
        AvxVec(unsafe { _mm256_blend_pd::<MASK>(self.0, other.0) })
    }

    #[inline(always)]
    fn clamp01(self) -> Self {
        // max-then-min equals the scalar `f64::clamp(0.0, 1.0)` for
        // every non-NaN input (only the sign of zero may differ, which
        // `==` cannot observe). NaNs cannot reach here.
        // SAFETY: register-only `vmaxpd`/`vminpd`; AVX2 guaranteed by
        // the entry point.
        AvxVec(unsafe {
            _mm256_min_pd(
                _mm256_max_pd(self.0, _mm256_set1_pd(0.0)),
                _mm256_set1_pd(1.0),
            )
        })
    }
}

/// Best-effort prefetch of the cache line at `p` into all levels
/// (`prefetcht0`). A pure scheduling hint — no-op on non-x86 hosts —
/// used by the sweep's tail walk to hide the plan arena's
/// dependent-load latency on circuits whose arena outgrows the LLC.
#[inline(always)]
pub(crate) fn prefetch_t0<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetcht0` is architecturally a hint: it cannot fault
    // regardless of the address's validity, and SSE is part of the
    // x86_64 baseline.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Which rule-core backend a sweep runs. Selected once per sweep (see
/// [`KernelBackend::auto`]); every site of that sweep then runs
/// dispatch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The plain-array twin — always available, and the only backend on
    /// non-x86 targets.
    Scalar,
    /// 256-bit `__m256d` rule cores, runtime-detected.
    Avx2,
}

impl KernelBackend {
    /// Whether this backend can run on the current host.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Avx2 => avx2_available(),
        }
    }

    /// The backend a sweep will use: AVX2 when the host supports it,
    /// unless the `SER_SIMD` env var overrides (`off`/`scalar` forces
    /// the twin; `avx2` asks for AVX2 and degrades to scalar when
    /// unavailable). Called once per sweep — the kernel never
    /// re-checks per gate.
    #[must_use]
    pub fn auto() -> KernelBackend {
        let requested = match std::env::var("SER_SIMD") {
            Ok(v) if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") => {
                KernelBackend::Scalar
            }
            _ => KernelBackend::Avx2,
        };
        requested.sanitized()
    }

    /// Degrades to a backend the host can actually run (AVX2 → scalar
    /// on hosts without it) — what keeps forcing `Avx2` sound
    /// everywhere.
    #[must_use]
    pub fn sanitized(self) -> KernelBackend {
        if self.is_available() {
            self
        } else {
            KernelBackend::Scalar
        }
    }

    /// The provenance string benches record (`"avx2"` / `"scalar"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_backend_is_always_available() {
        assert!(KernelBackend::Scalar.is_available());
        assert_eq!(KernelBackend::Scalar.sanitized(), KernelBackend::Scalar);
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
    }

    #[test]
    fn auto_only_picks_available_backends() {
        assert!(KernelBackend::auto().is_available());
        // Whatever `auto` returned, sanitizing is a no-op on it.
        assert_eq!(KernelBackend::auto().sanitized(), KernelBackend::auto());
    }

    #[test]
    fn sanitize_degrades_avx2_only_when_missing() {
        let s = KernelBackend::Avx2.sanitized();
        if KernelBackend::Avx2.is_available() {
            assert_eq!(s, KernelBackend::Avx2);
        } else {
            assert_eq!(s, KernelBackend::Scalar);
        }
    }

    #[test]
    fn imm4_matches_permute_encoding() {
        assert_eq!(imm4(0, 1, 2, 3), 0b11_10_01_00);
        assert_eq!(imm4(3, 3, 3, 3), 0b11_11_11_11);
        assert_eq!(imm4(1, 0, 3, 2), 0b10_11_00_01);
    }

    #[test]
    fn scalar_twin_shuffles_decode_the_imm() {
        let v = ScalarVec([10.0, 11.0, 12.0, 13.0]);
        assert_eq!(
            v.permute::<{ imm4(3, 2, 1, 0) }>().0,
            [13.0, 12.0, 11.0, 10.0]
        );
        assert_eq!(v.permute::<{ imm4(2, 2, 2, 2) }>().0, [12.0; 4]);
        let w = ScalarVec([20.0, 21.0, 22.0, 23.0]);
        assert_eq!(v.blend::<0b0110>(w).0, [10.0, 21.0, 22.0, 13.0]);
        assert_eq!(v.blend::<0b0000>(w).0, v.0);
        assert_eq!(v.blend::<0b1111>(w).0, w.0);
    }

    #[test]
    fn scalar_twin_clamps_like_new_clamped() {
        let v = ScalarVec([-1e-17, 1.0 + 1e-15, 0.5, f64::MIN_POSITIVE / 2.0]);
        let c = v.clamp01().0;
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 1.0);
        assert_eq!(c[2], 0.5);
        // Denormals pass through untouched.
        assert_eq!(c[3], f64::MIN_POSITIVE / 2.0);
    }

    /// Lane-by-lane equivalence of the two backends over every trait
    /// op, including denormal and clamp-edge values — the op-level form
    /// of the sweep-level forced-backend proptest.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_ops_match_scalar_twin_bitwise() {
        if !KernelBackend::Avx2.is_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        // The feature boundary for the test body, mirroring the
        // kernel's entry-point structure.
        // SAFETY: callers must hold `KernelBackend::Avx2.is_available()`
        // — the one call site below checks it first.
        #[target_feature(enable = "avx2")]
        unsafe fn run(a: Lane4, b: Lane4) {
            let (sa, sb) = (ScalarVec::load(&a), ScalarVec::load(&b));
            let (va, vb) = (AvxVec::load(&a), AvxVec::load(&b));
            assert_eq!(va.store(), a);
            assert_eq!(va.mul(vb).store(), sa.mul(sb).store());
            assert_eq!(va.add(vb).store(), sa.add(sb).store());
            assert_eq!(va.clamp01().store(), sa.clamp01().store());
            assert_eq!(
                va.permute::<{ imm4(1, 0, 3, 2) }>().store(),
                sa.permute::<{ imm4(1, 0, 3, 2) }>().store()
            );
            assert_eq!(
                va.permute::<{ imm4(3, 3, 3, 3) }>().store(),
                sa.permute::<{ imm4(3, 3, 3, 3) }>().store()
            );
            assert_eq!(
                va.blend::<0b0110>(vb).store(),
                sa.blend::<0b0110>(sb).store()
            );
            assert_eq!(AvxVec::splat(0.25).store(), ScalarVec::splat(0.25).store());
            assert_eq!(AvxVec::zero().store(), ScalarVec::zero().store());
        }
        let denormal = f64::MIN_POSITIVE / 4.0;
        let cases = [
            (Lane4([0.1, 0.2, 0.3, 0.4]), Lane4([0.9, 0.8, 0.7, 0.6])),
            (
                Lane4([0.0, 1.0, denormal, -denormal]),
                Lane4([denormal, 1.0, 0.0, 1.0]),
            ),
            (
                Lane4([1.0 + 1e-15, -1e-17, 0.5, f64::MIN_POSITIVE]),
                Lane4([0.25, 0.5, 1.0, 0.125]),
            ),
        ];
        for (a, b) in cases {
            // SAFETY: guarded by the `is_available` check above.
            unsafe { run(a, b) };
        }
    }
}
