//! The paper's four-value propagation probability tuple.
//!
//! For an on-path signal `U` during EPP computation the paper tracks
//! four exhaustive, mutually exclusive cases:
//!
//! - `Pa(U)` — the erroneous value reached `U` with an **even** number
//!   of inversions (U carries `a`),
//! - `Pā(U)` — it reached `U` with an **odd** number of inversions
//!   (`ā`),
//! - `P0(U)` / `P1(U)` — the error was blocked and `U` holds a correct
//!   constant 0 / 1.
//!
//! For an on-path signal the four sum to 1; for an off-path signal only
//! `P0 + P1 = 1` (its value is described by the signal probability).

use std::fmt;
use std::ops::{Add, Mul};

/// Tolerance used by invariant checks: probabilities are accumulated
/// products of f64s, so exact-1 sums are not achievable.
pub const SUM_TOLERANCE: f64 = 1e-9;

/// A four-value propagation probability `(Pa, Pā, P0, P1)`.
///
/// # Examples
///
/// ```
/// use ser_epp::FourValue;
///
/// // An off-path signal with signal probability 0.3.
/// let off = FourValue::from_signal_probability(0.3);
/// assert_eq!(off.p1(), 0.3);
/// assert_eq!(off.p_arrival(), 0.0);
///
/// // The error site itself: carries `a` with certainty.
/// let site = FourValue::error_site();
/// assert_eq!(site.pa(), 1.0);
/// assert_eq!(site.p_arrival(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourValue {
    pa: f64,
    pa_bar: f64,
    p0: f64,
    p1: f64,
}

impl FourValue {
    /// Builds a tuple from the four probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any component is outside `[0, 1]` (beyond tolerance) or
    /// the components do not sum to 1 (beyond [`SUM_TOLERANCE`]).
    #[must_use]
    pub fn new(pa: f64, pa_bar: f64, p0: f64, p1: f64) -> Self {
        let v = FourValue { pa, pa_bar, p0, p1 };
        v.check();
        v
    }

    /// Builds a tuple without the sum check, clamping each component
    /// into `[0, 1]` and normalizing tiny negative dust. Used by the
    /// propagation rules where products can drift by a few ULPs.
    #[must_use]
    pub(crate) fn new_clamped(pa: f64, pa_bar: f64, p0: f64, p1: f64) -> Self {
        let clamp = |x: f64| x.clamp(0.0, 1.0);
        let v = FourValue {
            pa: clamp(pa),
            pa_bar: clamp(pa_bar),
            p0: clamp(p0),
            p1: clamp(p1),
        };
        debug_assert!(
            (v.sum() - 1.0).abs() < 1e-6,
            "four-value drifted badly: {v:?} sums to {}",
            v.sum()
        );
        v
    }

    /// The tuple as a 4-wide lane array `[Pa, Pā, P0, P1]` — the shape
    /// the fused sweep kernel computes in (one 32-byte load/store per
    /// tuple, `std::simd::f64x4`-ready). Bit-exact.
    #[inline]
    #[must_use]
    pub(crate) const fn lanes(self) -> [f64; 4] {
        [self.pa, self.pa_bar, self.p0, self.p1]
    }

    /// Inverse of [`lanes`](Self::lanes): no checks, no clamping,
    /// bit-exact.
    #[inline]
    #[must_use]
    pub(crate) const fn from_lanes([pa, pa_bar, p0, p1]: [f64; 4]) -> Self {
        FourValue { pa, pa_bar, p0, p1 }
    }

    fn check(&self) {
        for (name, x) in [
            ("pa", self.pa),
            ("pa_bar", self.pa_bar),
            ("p0", self.p0),
            ("p1", self.p1),
        ] {
            assert!(
                x.is_finite() && (-SUM_TOLERANCE..=1.0 + SUM_TOLERANCE).contains(&x),
                "{name} = {x} outside [0,1]"
            );
        }
        assert!(
            (self.sum() - 1.0).abs() <= SUM_TOLERANCE,
            "components sum to {}, expected 1",
            self.sum()
        );
    }

    /// The error site's own value: `P(a) = 1` (the SEU forces the
    /// erroneous value with certainty, zero inversions so far).
    #[must_use]
    pub fn error_site() -> Self {
        FourValue {
            pa: 1.0,
            pa_bar: 0.0,
            p0: 0.0,
            p1: 0.0,
        }
    }

    /// An off-path signal: never carries the error; it is 1 with the
    /// given signal probability.
    ///
    /// # Panics
    ///
    /// Panics if `sp` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn from_signal_probability(sp: f64) -> Self {
        assert!(
            sp.is_finite() && (0.0..=1.0).contains(&sp),
            "signal probability {sp} outside [0,1]"
        );
        FourValue {
            pa: 0.0,
            pa_bar: 0.0,
            p0: 1.0 - sp,
            p1: sp,
        }
    }

    /// Probability the signal carries the erroneous value `a`
    /// (even inversion parity).
    #[must_use]
    pub fn pa(&self) -> f64 {
        self.pa
    }

    /// Probability the signal carries `ā` (odd inversion parity).
    #[must_use]
    pub fn pa_bar(&self) -> f64 {
        self.pa_bar
    }

    /// Probability the error is blocked and the signal is 0.
    #[must_use]
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// Probability the error is blocked and the signal is 1.
    #[must_use]
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// `Pa + Pā`: the probability the erroneous value (either polarity)
    /// is present on this signal — the per-output quantity inside the
    /// paper's `P_sensitized` product.
    #[must_use]
    pub fn p_arrival(&self) -> f64 {
        self.pa + self.pa_bar
    }

    /// Sum of all four components (1 for on-path tuples).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.pa + self.pa_bar + self.p0 + self.p1
    }

    /// The tuple seen through an inverter (the paper's NOT rule):
    /// swaps `Pa ↔ Pā` and `P0 ↔ P1`.
    #[must_use]
    pub fn invert(&self) -> Self {
        FourValue {
            pa: self.pa_bar,
            pa_bar: self.pa,
            p0: self.p1,
            p1: self.p0,
        }
    }

    /// Largest absolute component difference against `other`.
    #[must_use]
    pub fn max_abs_diff(&self, other: &FourValue) -> f64 {
        (self.pa - other.pa)
            .abs()
            .max((self.pa_bar - other.pa_bar).abs())
            .max((self.p0 - other.p0).abs())
            .max((self.p1 - other.p1).abs())
    }

    /// Convex combination `(1-t)·self + t·other` (used by the
    /// multi-cycle extension to mix frame distributions).
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]`.
    #[must_use]
    pub fn lerp(&self, other: &FourValue, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "t = {t} outside [0,1]");
        FourValue {
            pa: self.pa * (1.0 - t) + other.pa * t,
            pa_bar: self.pa_bar * (1.0 - t) + other.pa_bar * t,
            p0: self.p0 * (1.0 - t) + other.p0 * t,
            p1: self.p1 * (1.0 - t) + other.p1 * t,
        }
    }
}

impl fmt::Display for FourValue {
    /// Renders in the paper's notation, omitting zero terms:
    /// `0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut terms: Vec<String> = Vec::with_capacity(4);
        if self.pa != 0.0 {
            terms.push(format!("{:.3}(a)", self.pa));
        }
        if self.pa_bar != 0.0 {
            terms.push(format!("{:.3}(ā)", self.pa_bar));
        }
        if self.p0 != 0.0 {
            terms.push(format!("{:.3}(0)", self.p0));
        }
        if self.p1 != 0.0 {
            terms.push(format!("{:.3}(1)", self.p1));
        }
        if terms.is_empty() {
            return f.write_str("0");
        }
        f.write_str(&terms.join(" + "))
    }
}

/// Component-wise sum (used when accumulating expectations; the result
/// is generally *not* a probability tuple until rescaled).
impl Add for FourValue {
    type Output = FourValue;

    fn add(self, rhs: FourValue) -> FourValue {
        FourValue {
            pa: self.pa + rhs.pa,
            pa_bar: self.pa_bar + rhs.pa_bar,
            p0: self.p0 + rhs.p0,
            p1: self.p1 + rhs.p1,
        }
    }
}

/// Scalar scaling (see [`Add`]).
impl Mul<f64> for FourValue {
    type Output = FourValue;

    fn mul(self, rhs: f64) -> FourValue {
        FourValue {
            pa: self.pa * rhs,
            pa_bar: self.pa_bar * rhs,
            p0: self.p0 * rhs,
            p1: self.p1 * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_getters() {
        let v = FourValue::new(0.1, 0.2, 0.3, 0.4);
        assert_eq!(v.pa(), 0.1);
        assert_eq!(v.pa_bar(), 0.2);
        assert_eq!(v.p0(), 0.3);
        assert_eq!(v.p1(), 0.4);
        assert!((v.p_arrival() - 0.3).abs() < 1e-15);
        assert!((v.sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_bad_sum() {
        let _ = FourValue::new(0.5, 0.5, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_negative() {
        let _ = FourValue::new(-0.5, 0.5, 0.5, 0.5);
    }

    #[test]
    fn error_site_is_pure_a() {
        let v = FourValue::error_site();
        assert_eq!(v.pa(), 1.0);
        assert_eq!(v.p_arrival(), 1.0);
        assert_eq!(v.p0(), 0.0);
    }

    #[test]
    fn off_path_from_sp() {
        let v = FourValue::from_signal_probability(0.7);
        assert_eq!(v.p1(), 0.7);
        assert!((v.p0() - 0.3).abs() < 1e-15);
        assert_eq!(v.p_arrival(), 0.0);
    }

    #[test]
    fn invert_swaps_pairs() {
        let v = FourValue::new(0.1, 0.2, 0.3, 0.4);
        let w = v.invert();
        assert_eq!(w.pa(), 0.2);
        assert_eq!(w.pa_bar(), 0.1);
        assert_eq!(w.p0(), 0.4);
        assert_eq!(w.p1(), 0.3);
        // Involution.
        assert_eq!(w.invert(), v);
    }

    #[test]
    fn display_matches_paper_notation() {
        let v = FourValue::new(0.042, 0.392, 0.168, 0.398);
        assert_eq!(v.to_string(), "0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)");
        let site = FourValue::error_site();
        assert_eq!(site.to_string(), "1.000(a)");
    }

    #[test]
    fn lerp_endpoints() {
        let a = FourValue::error_site();
        let b = FourValue::from_signal_probability(0.5);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.pa() - 0.5).abs() < 1e-15);
        assert!((mid.p1() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_for_expectations() {
        let a = FourValue::error_site() * 0.25;
        let b = FourValue::from_signal_probability(0.5) * 0.75;
        let mix = a + b;
        assert!((mix.pa() - 0.25).abs() < 1e-15);
        assert!((mix.p1() - 0.375).abs() < 1e-15);
        assert!((mix.sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_is_a_metric_ish() {
        let a = FourValue::new(0.1, 0.2, 0.3, 0.4);
        let b = FourValue::new(0.4, 0.3, 0.2, 0.1);
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-15);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
