//! The batched whole-circuit sweep engine: precomputed cone plans, a
//! structure-of-arrays four-value kernel, and a work-stealing site
//! scheduler.
//!
//! The per-site reference path
//! ([`EppAnalysis::site_with_workspace`]) rebuilds each site's cone by
//! DFS, re-sorts it, and propagates tuples through a full-circuit AoS
//! `values` array — per site, per sweep. This module is the compiled
//! form of the same computation:
//!
//! - **Cone plans** ([`ser_netlist::ConePlans`], cached on the shared
//!   [`TopoArtifacts`](ser_netlist::TopoArtifacts)): the DFF-clipped
//!   cone in topo order with every fanin pre-classified as on-path
//!   (cone-local index) or off-path (SP lookup), computed once per
//!   circuit.
//! - **SoA planes** ([`SweepWorkspace`]): the four tuple components in
//!   flat `f64` slices indexed by cone-local position — the kernel
//!   reads fanins through the plan's indices and never touches
//!   circuit-sized scratch.
//! - **Scheduler**: an atomic-cursor work queue over cone-cost-balanced
//!   batches; workers claim the next batch when they finish their
//!   current one, so wildly varying cone sizes no longer leave threads
//!   idle the way the old static `n / threads` split did.
//!
//! Results land in a [`SweepResults`] arena — one shared `Vec` of
//! per-point arrivals with per-site ranges — so the steady-state sweep
//! performs no per-site heap allocation at all. The per-site reference
//! path is retained and the batched engine is bit-for-bit identical to
//! it (asserted by `tests/sweep_equivalence.rs`).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ser_netlist::{ConePlans, FaninRef, NodeId, ObservePoint};
use ser_sp::SpVector;

use crate::engine::{
    combine_sensitization, EppAnalysis, PointEpp, PolarityMode, SiteEpp, SiteWorkspace,
    WorkspacePool,
};
use crate::four_value::FourValue;
use crate::rules::{merge_polarity_v, propagate2_v, propagate_fused_v, RuleOp};
#[cfg(target_arch = "x86_64")]
use crate::simd::AvxVec;
use crate::simd::{KernelBackend, Lane4, LaneVec, ScalarVec};

/// Below this many sites a parallel sweep is all coordination and no
/// work: the scheduler runs single-threaded instead. (The old engine
/// hard-coded the same `64` inline.)
pub const SINGLE_THREAD_SWEEP_THRESHOLD: usize = 64;

/// How many batches the scheduler cuts per worker thread. More batches
/// means finer-grained stealing (better balance when cone sizes vary
/// wildly) at the cost of a little queue traffic.
const BATCHES_PER_THREAD: usize = 8;

/// How far ahead of the tail walk the kernel prefetches fanin rows —
/// far enough to cover a DRAM round trip at the walk's pace, near
/// enough that the lines still sit in L1/L2 when the walk arrives.
const PREFETCH_DISTANCE: usize = 8;

/// Per-thread scratch for the batched sweep: the `(Pa, Pā, P0, P1)`
/// value planes indexed by cone-local position, stored as one
/// 32-byte-aligned 4-wide lane array ([`Lane4`]) per position — so
/// reading or writing one tuple is a single bounds check and one
/// aligned 32-byte access: a `vmovapd` for the AVX2 backend, a plain
/// `[f64; 4]` copy for the scalar twin. Grows to the largest cone it
/// evaluates and is reused across sites, sweeps and circuits (pool it
/// via [`WorkspacePool::checkout_sweep`]).
#[derive(Debug, Default)]
pub struct SweepWorkspace {
    lanes: Vec<Lane4>,
    /// Per-site gather buffer for the chain path's observe refs —
    /// sorted by observe index, then merged with the shared tail's
    /// (already sorted) refs so points are emitted in the reference
    /// path's observe order.
    path_obs: Vec<(u32, u32)>,
    /// Per-topological-position membership stamps for the tail walk:
    /// `epoch << 32 | cone_local_index`, where the epoch is bumped
    /// once per site. A tail pin whose position carries the current
    /// epoch is on-path and its lanes sit at the stored cone-local
    /// index; anything else resolves off-path by signal probability.
    /// Stamps survive across sites/circuits (the epoch invalidates
    /// them in O(1); on wrap the table is cleared).
    pos_stamp: Vec<u64>,
    stamp_epoch: u32,
    /// The off-path **SP lane plane**: one precomputed
    /// `from_signal_probability` tuple per circuit position, so every
    /// off-path gather in the kernel is a single aligned 32-byte load
    /// instead of a recomputed (and re-range-checked) tuple.
    sp_lanes: Vec<Lane4>,
    /// The SP vector `sp_lanes` was built from, pinned so the plane
    /// survives across sweeps: an SP allocation is immutable and its
    /// address unique for as long as anything references it, so
    /// `Arc::ptr_eq` is a sound cache key (the same invariant the
    /// session's multi-cycle cache relies on).
    sp_pin: Option<Arc<SpVector>>,
}

impl SweepWorkspace {
    /// Fresh, empty scratch (planes grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SweepWorkspace::default()
    }

    /// Current plane capacity (largest cone seen so far).
    #[must_use]
    pub fn plane_len(&self) -> usize {
        self.lanes.len()
    }

    fn ensure(&mut self, len: usize) {
        if self.lanes.len() < len {
            self.lanes.resize(len, Lane4::default());
        }
    }

    /// Builds (or reuses) the SP lane plane for `sp`. Validation
    /// happens here, once per distribution per workspace — a bad SP
    /// panics at plane build exactly as `from_signal_probability`
    /// would have panicked at first gather, instead of corrupting the
    /// sweep.
    fn ensure_sp_plane(&mut self, sp: &Arc<SpVector>) {
        if let Some(pin) = &self.sp_pin {
            if Arc::ptr_eq(pin, sp) {
                return;
            }
        }
        self.sp_pin = None;
        self.sp_lanes.clear();
        self.sp_lanes.extend(
            sp.as_slice()
                .iter()
                .map(|&x| Lane4(FourValue::from_signal_probability(x).lanes())),
        );
        self.sp_pin = Some(Arc::clone(sp));
    }

    /// Sizes the position-stamp table for a circuit of `n` positions
    /// and starts a fresh stamp epoch for the next site. Returns the
    /// epoch already shifted into the stamp's high half.
    fn next_epoch(&mut self, n: usize) -> u64 {
        if self.pos_stamp.len() < n {
            self.pos_stamp.resize(n, 0);
        }
        self.stamp_epoch = self.stamp_epoch.wrapping_add(1);
        if self.stamp_epoch == 0 {
            self.pos_stamp.fill(0);
            self.stamp_epoch = 1;
        }
        u64::from(self.stamp_epoch) << 32
    }
}

/// Read-only view of everything one sweep produced for one site.
///
/// Obtained from [`SweepResults::site`] / [`SweepResults::iter`];
/// borrows the arena, allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct SweepSiteRef<'a> {
    results: &'a SweepResults,
    pos: usize,
}

impl<'a> SweepSiteRef<'a> {
    /// The error site analyzed.
    #[must_use]
    pub fn site(&self) -> NodeId {
        self.results.sites[self.pos]
    }

    /// Error arrival per reachable observe point (a slice into the
    /// sweep's shared arena).
    #[must_use]
    pub fn per_point(&self) -> &'a [PointEpp] {
        &self.results.points[self.results.point_off[self.pos] as usize
            ..self.results.point_off[self.pos + 1] as usize]
    }

    /// The paper's `P_sensitized` for this site.
    #[must_use]
    pub fn p_sensitized(&self) -> f64 {
        self.results.p_sensitized[self.pos]
    }

    /// Number of on-path gates the pass visited (cost indicator).
    #[must_use]
    pub fn on_path_gates(&self) -> usize {
        self.results.on_path_gates[self.pos] as usize
    }

    /// Arrival tuple at a specific observed signal, if reachable.
    #[must_use]
    pub fn arrival_at(&self, signal: NodeId) -> Option<FourValue> {
        self.per_point()
            .iter()
            .find(|p| p.point.signal() == signal)
            .map(|p| p.value)
    }

    /// Converts into the owned per-site form (allocates; prefer the
    /// borrowed accessors in hot paths).
    #[must_use]
    pub fn to_site_epp(&self) -> SiteEpp {
        SiteEpp::from_parts(
            self.site(),
            self.per_point().to_vec(),
            self.p_sensitized(),
            self.on_path_gates(),
        )
    }
}

/// Uniform read access to one site's EPP result, whether it lives in an
/// owned [`SiteEpp`] or borrows a [`SweepResults`] arena — what the SER
/// model assembly and the electrical-masking derating are generic over.
pub trait EppSiteView {
    /// The error site analyzed.
    fn site(&self) -> NodeId;
    /// Error arrival per reachable observe point.
    fn per_point(&self) -> &[PointEpp];
    /// The paper's `P_sensitized`.
    fn p_sensitized(&self) -> f64;
    /// Number of on-path gates visited.
    fn on_path_gates(&self) -> usize;
}

impl EppSiteView for SiteEpp {
    fn site(&self) -> NodeId {
        SiteEpp::site(self)
    }
    fn per_point(&self) -> &[PointEpp] {
        SiteEpp::per_point(self)
    }
    fn p_sensitized(&self) -> f64 {
        SiteEpp::p_sensitized(self)
    }
    fn on_path_gates(&self) -> usize {
        SiteEpp::on_path_gates(self)
    }
}

impl<T: EppSiteView> EppSiteView for &T {
    fn site(&self) -> NodeId {
        (**self).site()
    }
    fn per_point(&self) -> &[PointEpp] {
        (**self).per_point()
    }
    fn p_sensitized(&self) -> f64 {
        (**self).p_sensitized()
    }
    fn on_path_gates(&self) -> usize {
        (**self).on_path_gates()
    }
}

impl EppSiteView for SweepSiteRef<'_> {
    fn site(&self) -> NodeId {
        SweepSiteRef::site(self)
    }
    fn per_point(&self) -> &[PointEpp] {
        SweepSiteRef::per_point(self)
    }
    fn p_sensitized(&self) -> f64 {
        SweepSiteRef::p_sensitized(self)
    }
    fn on_path_gates(&self) -> usize {
        SweepSiteRef::on_path_gates(self)
    }
}

/// The flat arena a batched sweep fills: per-site `P_sensitized`,
/// on-path gate counts, and one shared `Vec<PointEpp>` addressed by
/// per-site ranges — no per-site heap allocation anywhere.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The analyzed sites, in request order.
    sites: Vec<NodeId>,
    /// `true` when `sites[i].index() == i` for all `i` (the
    /// whole-circuit sweep), enabling O(1) lookup by node id.
    dense: bool,
    p_sensitized: Vec<f64>,
    on_path_gates: Vec<u32>,
    /// `point_off[i]..point_off[i+1]` delimits site `i`'s slice of
    /// `points`. Length `sites.len() + 1`.
    point_off: Vec<u32>,
    points: Vec<PointEpp>,
    threads_used: usize,
}

/// Equality compares the *results* only — `threads_used` is scheduling
/// metadata, and a 1-thread sweep must equal an 8-thread sweep.
impl PartialEq for SweepResults {
    fn eq(&self, other: &Self) -> bool {
        self.sites == other.sites
            && self.p_sensitized == other.p_sensitized
            && self.on_path_gates == other.on_path_gates
            && self.point_off == other.point_off
            && self.points == other.points
    }
}

impl SweepResults {
    /// Number of sites analyzed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` if no sites were analyzed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The analyzed sites, in result order.
    #[must_use]
    pub fn sites(&self) -> &[NodeId] {
        &self.sites
    }

    /// Worker threads the scheduler actually used for this sweep (1 for
    /// sweeps under [`SINGLE_THREAD_SWEEP_THRESHOLD`]).
    #[must_use]
    pub fn threads_used(&self) -> usize {
        self.threads_used
    }

    /// Per-site `P_sensitized`, parallel to [`sites`](Self::sites).
    #[must_use]
    pub fn p_sensitized(&self) -> &[f64] {
        &self.p_sensitized
    }

    /// Total per-point arrivals stored across all sites.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.points.len()
    }

    /// The result at position `pos` (request order).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    #[must_use]
    pub fn get(&self, pos: usize) -> SweepSiteRef<'_> {
        assert!(pos < self.sites.len(), "sweep position {pos} out of range");
        SweepSiteRef { results: self, pos }
    }

    /// The result for one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` was not part of this sweep.
    #[must_use]
    pub fn site(&self, site: NodeId) -> SweepSiteRef<'_> {
        let pos = if self.dense {
            let i = site.index();
            assert!(i < self.sites.len(), "site {site} out of range");
            i
        } else {
            self.sites
                .iter()
                .position(|&s| s == site)
                .unwrap_or_else(|| panic!("site {site} was not analyzed by this sweep"))
        };
        SweepSiteRef { results: self, pos }
    }

    /// Iterates all site results in request order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = SweepSiteRef<'_>> {
        (0..self.sites.len()).map(move |pos| SweepSiteRef { results: self, pos })
    }

    /// Converts the arena into owned per-site results (one heap `Vec`
    /// per site — the compatibility shim for the pre-arena API).
    #[must_use]
    pub fn to_site_epps(&self) -> Vec<SiteEpp> {
        self.iter().map(|r| r.to_site_epp()).collect()
    }

    /// Stitches several sweep arenas into one, in part order — how a
    /// service reassembles a sweep it fanned out as independent site
    /// batches over a shared executor. Per-site payloads are
    /// position-independent, so the concatenation is exactly the arena
    /// a single sweep over the concatenated site list would produce.
    /// `threads_used` becomes the number of parts (each part is one
    /// worker's output).
    #[must_use]
    pub fn concat<I: IntoIterator<Item = SweepResults>>(parts: I) -> SweepResults {
        let mut out = SweepResults {
            sites: Vec::new(),
            dense: false,
            p_sensitized: Vec::new(),
            on_path_gates: Vec::new(),
            point_off: vec![0],
            points: Vec::new(),
            threads_used: 0,
        };
        for part in parts {
            out.threads_used += 1;
            out.sites.extend_from_slice(&part.sites);
            out.p_sensitized.extend_from_slice(&part.p_sensitized);
            out.on_path_gates.extend_from_slice(&part.on_path_gates);
            let base = *out.point_off.last().expect("non-empty offsets");
            out.point_off
                .extend(part.point_off[1..].iter().map(|&o| o + base));
            out.points.extend_from_slice(&part.points);
        }
        out.dense = out.sites.iter().enumerate().all(|(i, s)| s.index() == i);
        out.threads_used = out.threads_used.max(1);
        out
    }

    /// Assembles a dense whole-circuit arena site by site — the splice
    /// primitive the what-if engine uses to merge re-swept dirty sites
    /// into a cached base sweep. `fill` is called once per node in id
    /// order; it appends the site's per-point arrivals to the shared
    /// arena and returns `(p_sensitized, on_path_gates)`. The result is
    /// indistinguishable from a fresh [`EppAnalysis::sweep`] producing
    /// the same per-site payloads (`threads_used` is 1; equality
    /// ignores it). `points_capacity` pre-sizes the shared arrival
    /// arena (a hint — the arena still grows if `fill` overshoots);
    /// splice callers pass the base arena's
    /// [`total_points`](Self::total_points), which is within a few
    /// sites of exact.
    #[must_use]
    pub fn assemble_dense(
        n_sites: usize,
        points_capacity: usize,
        mut fill: impl FnMut(NodeId, &mut Vec<PointEpp>) -> (f64, u32),
    ) -> SweepResults {
        let mut out = SweepResults {
            sites: (0..n_sites).map(NodeId::from_index).collect(),
            dense: true,
            p_sensitized: Vec::with_capacity(n_sites),
            on_path_gates: Vec::with_capacity(n_sites),
            point_off: Vec::with_capacity(n_sites + 1),
            points: Vec::with_capacity(points_capacity),
            threads_used: 1,
        };
        out.point_off.push(0);
        for i in 0..n_sites {
            let before = out.points.len();
            let (p_sens, gates) = fill(NodeId::from_index(i), &mut out.points);
            out.p_sensitized.push(p_sens);
            out.on_path_gates.push(gates);
            let n_points = u32::try_from(out.points.len() - before).expect("points fit u32");
            let last = *out.point_off.last().expect("non-empty offsets");
            out.point_off.push(last + n_points);
        }
        out
    }

    /// The sink-TMR splice, specialized from
    /// [`assemble_dense`](Self::assemble_dense) into bulk copies: `self`
    /// is the dense pre-edit arena, the gate at old index `g_idx` was
    /// hardened in place (six inserted nodes, so every id at or above
    /// `g_idx` shifts up by 6) and `struct_res` holds the seven freshly
    /// swept replacement sites in id order.
    ///
    /// The arena is its own probe: a fanout-free gate is observed as
    /// its own primary output, and a stored arrival at a primary
    /// output *is* the [`PolarityMode::Tracked`] four-value state of
    /// that node — exactly the state the three replicas reproduce
    /// bitwise after hardening (same kinds, same fanins, same
    /// on/off-path classification). So each `fast` site's new arrival
    /// at the gate's observe point is `voter_of` (the TMR voter rule)
    /// applied to the arrival the site already has on record, and no
    /// cone is re-walked at all. The patch runs in one pass per site:
    /// bulk `extend_from_slice`, voter substitution at the gate's
    /// point, id shift, and the sensitization fold re-run in observe
    /// order (plus the six voter-tree gates on the site's path count).
    ///
    /// Bit-for-bit equal to re-sweeping every `fast` site on the
    /// edited circuit: the copies, patches, and folds perform the same
    /// float operations in the same order as the kernel's own observe
    /// emission.
    #[must_use]
    pub(crate) fn splice_tmr_sink(
        &self,
        g_idx: usize,
        struct_res: &SweepResults,
        fast: &[bool],
        voter_of: impl Fn(FourValue) -> FourValue,
    ) -> SweepResults {
        debug_assert!(self.dense, "splice requires the dense base arena");
        debug_assert_eq!(struct_res.len(), 7, "replicas, voter pairs, voter");
        let n_old = self.sites.len();
        let g_point = ObservePoint::PrimaryOutput(NodeId::from_index(g_idx));
        let g_span = (self.point_off[g_idx + 1] - self.point_off[g_idx]) as usize;
        let mut out = SweepResults {
            sites: (0..n_old + 6).map(NodeId::from_index).collect(),
            dense: true,
            p_sensitized: Vec::with_capacity(n_old + 6),
            on_path_gates: Vec::with_capacity(n_old + 6),
            point_off: Vec::with_capacity(n_old + 7),
            points: Vec::with_capacity(self.points.len() - g_span + struct_res.points.len()),
            threads_used: 1,
        };
        out.point_off.push(0);
        let shift = |id: NodeId| {
            if id.index() >= g_idx {
                NodeId::from_index(id.index() + 6)
            } else {
                id
            }
        };
        let copy_patched = |out: &mut SweepResults, old: usize| {
            let start = out.points.len();
            out.points.extend_from_slice(
                &self.points[self.point_off[old] as usize..self.point_off[old + 1] as usize],
            );
            let mut patched = false;
            for p in &mut out.points[start..] {
                if fast[old] && p.point == g_point {
                    p.value = voter_of(p.value);
                    patched = true;
                }
                p.point = match p.point {
                    ObservePoint::PrimaryOutput(id) => ObservePoint::PrimaryOutput(shift(id)),
                    ObservePoint::FlipFlop { dff, data } => ObservePoint::FlipFlop {
                        dff: shift(dff),
                        data: shift(data),
                    },
                };
            }
            if patched {
                out.p_sensitized.push(combine_sensitization(
                    out.points[start..].iter().map(PointEpp::p_arrival),
                ));
            } else {
                out.p_sensitized.push(self.p_sensitized[old]);
            }
            out.on_path_gates
                .push(self.on_path_gates[old] + if fast[old] { 6 } else { 0 });
            let n = u32::try_from(out.points.len() - start).expect("points fit u32");
            let last = *out.point_off.last().expect("non-empty offsets");
            out.point_off.push(last + n);
        };
        for old in 0..g_idx {
            copy_patched(&mut out, old);
        }
        for s in 0..struct_res.len() {
            debug_assert_eq!(
                struct_res.sites[s].index(),
                g_idx + s,
                "struct splice order"
            );
            out.points.extend_from_slice(
                &struct_res.points
                    [struct_res.point_off[s] as usize..struct_res.point_off[s + 1] as usize],
            );
            out.p_sensitized.push(struct_res.p_sensitized[s]);
            out.on_path_gates.push(struct_res.on_path_gates[s]);
            let last = *out.point_off.last().expect("non-empty offsets");
            out.point_off
                .push(last + (struct_res.point_off[s + 1] - struct_res.point_off[s]));
        }
        for old in g_idx + 1..n_old {
            copy_patched(&mut out, old);
        }
        out
    }
}

/// Per-worker scratch for one sweep: SoA planes when cone plans are
/// available, a classic [`SiteWorkspace`] when the plan arena was
/// declined for size and the sweep falls back to per-site traversal.
enum SweepScratch {
    Plan(SweepWorkspace),
    Reference(SiteWorkspace),
}

impl SweepScratch {
    fn checkout(analysis: &EppAnalysis, pool: &WorkspacePool, planned: bool) -> Self {
        if planned {
            let mut ws = pool.checkout_sweep();
            // One plane build per worker per sweep — and usually none:
            // pooled workspaces keep their plane pinned to the exact SP
            // allocation, so repeat sweeps (and the service's
            // single-site requests) skip straight through.
            ws.ensure_sp_plane(analysis.sp_arc());
            SweepScratch::Plan(ws)
        } else {
            SweepScratch::Reference(pool.checkout(analysis))
        }
    }

    fn give_back(self, pool: &WorkspacePool) {
        match self {
            SweepScratch::Plan(ws) => pool.give_back_sweep(ws),
            SweepScratch::Reference(ws) => pool.give_back(ws),
        }
    }
}

/// One worker's output for one claimed batch: results for the
/// contiguous site range starting at `start`, stitched back in
/// position order after the join.
struct Segment {
    start: usize,
    p_sens: Vec<f64>,
    gates: Vec<u32>,
    point_counts: Vec<u32>,
    points: Vec<PointEpp>,
}

impl EppAnalysis {
    /// The batched whole-circuit sweep: every node as an error site,
    /// [`PolarityMode::Tracked`], results in one flat arena.
    ///
    /// Bit-for-bit identical to calling
    /// [`site_with_workspace`](Self::site_with_workspace) per node; the
    /// cone plans are built once per circuit (cached on the shared
    /// artifacts) and the scheduler hands cone-cost-balanced batches to
    /// `threads` workers through an atomic cursor.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn sweep(&self, threads: usize, pool: &WorkspacePool) -> SweepResults {
        self.sweep_with(PolarityMode::Tracked, threads, pool)
    }

    /// Like [`sweep`](Self::sweep) with an explicit polarity mode.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn sweep_with(
        &self,
        polarity: PolarityMode,
        threads: usize,
        pool: &WorkspacePool,
    ) -> SweepResults {
        let sites: Vec<NodeId> = self.circuit().node_ids().collect();
        self.sweep_sites_with(&sites, polarity, threads, pool)
    }

    /// The batched sweep over an explicit site list (e.g. only the
    /// flip-flops, for the multi-cycle frame expansion). Results come
    /// back in the same order as `sites`. The rule-core backend is
    /// selected here, once per sweep ([`KernelBackend::auto`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or any site is out of range.
    #[must_use]
    pub fn sweep_sites_with(
        &self,
        sites: &[NodeId],
        polarity: PolarityMode,
        threads: usize,
        pool: &WorkspacePool,
    ) -> SweepResults {
        self.sweep_sites_with_backend(sites, polarity, threads, pool, KernelBackend::auto())
    }

    /// Like [`sweep_sites_with`](Self::sweep_sites_with) with an
    /// explicit rule-core backend — the forcing hook the dual-backend
    /// equivalence tests and benches use. A backend the host cannot
    /// run degrades to [`KernelBackend::Scalar`]
    /// ([`KernelBackend::sanitized`]), so forcing is always safe.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or any site is out of range.
    #[must_use]
    pub fn sweep_sites_with_backend(
        &self,
        sites: &[NodeId],
        polarity: PolarityMode,
        threads: usize,
        pool: &WorkspacePool,
        backend: KernelBackend,
    ) -> SweepResults {
        assert!(threads > 0, "at least one thread");
        // `None` when the circuit's plan arena exceeds the member
        // budget: the sweep then runs the bit-identical per-site
        // reference kernel (O(n) scratch) under the same scheduler.
        let plans = self.artifacts().cone_plans(self.circuit()).cloned();
        self.sweep_impl(
            sites,
            polarity,
            threads,
            pool,
            plans.as_deref(),
            backend.sanitized(),
        )
    }

    /// The batched sweep over an explicit site list forced onto the
    /// per-site reference kernel (no cone plans consulted, none
    /// compiled). Bit-identical to the planned sweep; the what-if
    /// engine uses it to re-sweep a handful of structurally dirty
    /// sites on an edited circuit without paying that circuit's plan
    /// compile.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or any site is out of range.
    #[must_use]
    pub fn sweep_sites_unplanned(
        &self,
        sites: &[NodeId],
        polarity: PolarityMode,
        threads: usize,
        pool: &WorkspacePool,
    ) -> SweepResults {
        assert!(threads > 0, "at least one thread");
        self.sweep_impl(
            sites,
            polarity,
            threads,
            pool,
            None,
            KernelBackend::auto().sanitized(),
        )
    }

    fn sweep_impl(
        &self,
        sites: &[NodeId],
        polarity: PolarityMode,
        threads: usize,
        pool: &WorkspacePool,
        plans: Option<&ConePlans>,
        backend: KernelBackend,
    ) -> SweepResults {
        let dense = sites.iter().enumerate().all(|(i, s)| s.index() == i);
        let total_points: usize =
            plans.map_or(0, |p| sites.iter().map(|&s| p.plan(s).observe_len()).sum());

        let mut results = SweepResults {
            sites: sites.to_vec(),
            dense,
            p_sensitized: Vec::with_capacity(sites.len()),
            on_path_gates: Vec::with_capacity(sites.len()),
            point_off: Vec::with_capacity(sites.len() + 1),
            points: Vec::with_capacity(total_points),
            threads_used: 1,
        };
        results.point_off.push(0);

        if threads == 1 || sites.len() < SINGLE_THREAD_SWEEP_THRESHOLD {
            let mut scratch = SweepScratch::checkout(self, pool, plans.is_some());
            for &site in sites {
                let (p_sens, gates, n_points) = self.site_kernel(
                    plans,
                    site,
                    polarity,
                    &mut scratch,
                    &mut results.points,
                    backend,
                );
                results.p_sensitized.push(p_sens);
                results.on_path_gates.push(gates);
                let last = *results.point_off.last().expect("non-empty offsets");
                results.point_off.push(last + n_points);
            }
            scratch.give_back(pool);
            return results;
        }

        // --- Batch construction: contiguous position ranges balanced by
        // cone cost (uniform when no plans exist), oversubscribed so
        // fast workers steal the tail. --------------------------------
        let costs: Vec<usize> = match plans {
            Some(p) => sites.iter().map(|&s| p.plan(s).cost()).collect(),
            None => vec![1; sites.len()],
        };
        let total_cost: usize = costs.iter().sum();
        let target = (total_cost / (threads * BATCHES_PER_THREAD)).max(1);
        let mut batches: Vec<Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut acc = 0usize;
        for (pos, &c) in costs.iter().enumerate() {
            acc += c;
            if acc >= target {
                batches.push(start..pos + 1);
                start = pos + 1;
                acc = 0;
            }
        }
        if start < sites.len() {
            batches.push(start..sites.len());
        }

        let workers = threads.min(batches.len());
        results.threads_used = workers;
        let cursor = AtomicUsize::new(0);
        let mut segments: Vec<Segment> = Vec::with_capacity(batches.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let batches = &batches;
                    let this = &*self;
                    scope.spawn(move || {
                        let mut scratch = SweepScratch::checkout(this, pool, plans.is_some());
                        let mut segs: Vec<Segment> = Vec::new();
                        loop {
                            let b = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(range) = batches.get(b).cloned() else {
                                break;
                            };
                            let mut seg = Segment {
                                start: range.start,
                                p_sens: Vec::with_capacity(range.len()),
                                gates: Vec::with_capacity(range.len()),
                                point_counts: Vec::with_capacity(range.len()),
                                points: Vec::new(),
                            };
                            for pos in range {
                                let (p_sens, gates, n_points) = this.site_kernel(
                                    plans,
                                    sites[pos],
                                    polarity,
                                    &mut scratch,
                                    &mut seg.points,
                                    backend,
                                );
                                seg.p_sens.push(p_sens);
                                seg.gates.push(gates);
                                seg.point_counts.push(n_points);
                            }
                            segs.push(seg);
                        }
                        scratch.give_back(pool);
                        segs
                    })
                })
                .collect();
            for h in handles {
                segments.extend(h.join().expect("sweep worker panicked"));
            }
        });

        // Stitch segments back in position order: batches partition the
        // site list contiguously, so concatenation restores it exactly.
        segments.sort_unstable_by_key(|s| s.start);
        for seg in segments {
            debug_assert_eq!(seg.start, results.p_sensitized.len(), "contiguous stitch");
            results.p_sensitized.extend_from_slice(&seg.p_sens);
            results.on_path_gates.extend_from_slice(&seg.gates);
            for c in seg.point_counts {
                let last = *results.point_off.last().expect("non-empty offsets");
                results.point_off.push(last + c);
            }
            results.points.extend_from_slice(&seg.points);
        }
        results
    }

    /// Dispatches one site to the plan-driven kernel (on the sweep's
    /// selected rule-core backend) or, when the plan arena was
    /// declined for size, to the per-site reference kernel — all
    /// bit-identical, so the choice is invisible in the results.
    fn site_kernel(
        &self,
        plans: Option<&ConePlans>,
        site: NodeId,
        polarity: PolarityMode,
        scratch: &mut SweepScratch,
        points_out: &mut Vec<PointEpp>,
        backend: KernelBackend,
    ) -> (f64, u32, u32) {
        match (plans, scratch) {
            (Some(plans), SweepScratch::Plan(ws)) => match backend {
                KernelBackend::Scalar => {
                    self.plan_kernel::<ScalarVec>(plans, site, polarity, ws, points_out)
                }
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `backend` went through `sanitized()` at sweep
                // entry, so `Avx2` implies
                // `is_x86_feature_detected!("avx2")` held on this host.
                KernelBackend::Avx2 => unsafe {
                    self.plan_kernel_avx2(plans, site, polarity, ws, points_out)
                },
                #[cfg(not(target_arch = "x86_64"))]
                KernelBackend::Avx2 => {
                    unreachable!("sanitized backends exclude AVX2 off x86-64")
                }
            },
            (None, SweepScratch::Reference(ws)) => {
                let r = self.site_with_workspace(site, polarity, ws);
                let n_points = u32::try_from(r.per_point().len()).expect("points fit u32");
                points_out.extend_from_slice(r.per_point());
                let gates = u32::try_from(r.on_path_gates()).expect("cone fits u32");
                (r.p_sensitized(), gates, n_points)
            }
            _ => unreachable!("scratch kind always matches plan availability"),
        }
    }

    /// The allocation-free plan-driven kernel for one site: evaluates
    /// the suffix-shared cone — the chain path, then the shared tail —
    /// over the 4-wide lane planes, appends the per-point arrivals to
    /// `points_out`, and returns
    /// `(p_sensitized, on-path gates, points appended)`.
    ///
    /// **Path members** (cone positions `1..=prefix_len`) carry no
    /// packed refs at all: a chain node's only possible on-path fanin
    /// is its path predecessor (anything else reading it would make it
    /// an anchor), so each pin resolves by comparing the pin's node id
    /// against the previously walked node — the anchor at position
    /// `prefix_len` included. **Tail members** read their packed
    /// tail-local refs off the shared table, rebased by the path
    /// length. Observe points are the sorted path observes merged with
    /// the tail's presorted refs, so emission order matches the
    /// reference path's observe order exactly.
    ///
    /// Per gate, the rule is dispatched **once** ([`RuleOp::of`],
    /// outside the per-fanin loop) and the fused rule core consumes
    /// fanin lanes straight off the planes / SP vector — no
    /// intermediate tuple buffer, no per-fanin re-dispatch, one fused
    /// traversal where the slice-based rules made three.
    ///
    /// Performs the exact same float operations in the exact same order
    /// as [`site_with_workspace`](Self::site_with_workspace) — the two
    /// paths are bit-identical by construction, on either rule-core
    /// backend (the vector cores are lane-wise twins of the scalar
    /// ones; see `crates/core/src/rules.rs`).
    ///
    /// Generic over the lane-vector backend; `#[inline(always)]` so
    /// each monomorphization collapses into its entry point — in
    /// particular into `plan_kernel_avx2`'s `target_feature` scope,
    /// where the AVX2 intrinsics inline to single instructions.
    #[inline(always)]
    fn plan_kernel<V: LaneVec>(
        &self,
        plans: &ConePlans,
        site: NodeId,
        polarity: PolarityMode,
        ws: &mut SweepWorkspace,
        points_out: &mut Vec<PointEpp>,
    ) -> (f64, u32, u32) {
        let plan = plans.plan(site);
        let l = plan.prefix_len();
        let tail = plan.tail();
        let len = l + tail.len();
        ws.ensure(len);
        let epoch = ws.next_epoch(plans.len());
        debug_assert_eq!(
            ws.sp_lanes.len(),
            self.circuit().len(),
            "SP lane plane prepared at scratch checkout"
        );

        let circuit = self.circuit();
        // Split the workspace borrows once: the gather closures read
        // the SP plane while the value plane is written between gates.
        let SweepWorkspace {
            lanes,
            path_obs,
            pos_stamp,
            sp_lanes,
            ..
        } = ws;
        let sp_lanes: &[Lane4] = sp_lanes;

        lanes[0] = Lane4(FourValue::error_site().lanes());

        // Chain path: walk `next_of` hops; position `l` is the anchor
        // (the tail's first member), whose pins — like every path
        // member's — resolve by predecessor comparison. When `l == 0`
        // the site *is* the anchor and the walk is empty. Path observe
        // refs (positions `0..l`) gather into the sort buffer; the
        // anchor's observes live in the tail's presorted refs.
        path_obs.clear();
        if l > 0 {
            for &obs in plan.observes_of(site) {
                path_obs.push((obs, 0));
            }
        }
        let mut prev = site;
        for pos in 1..=l {
            let id = plan.next_of(prev);
            let node = circuit.node(id);
            let op = RuleOp::of(node.kind());
            let prev_lanes = V::load(&lanes[pos - 1]);
            let mut out = propagate_fused_v(
                op,
                node.fanin().iter().map(|&pin| {
                    if pin == prev {
                        prev_lanes
                    } else {
                        // Off-path: one aligned load off the SP plane
                        // (the tuple — and its range check — was
                        // computed once at plane build).
                        V::load(&sp_lanes[pin.index()])
                    }
                }),
            );
            if polarity == PolarityMode::Merged {
                // Collapse Pā into Pa after every gate — same ablation
                // transform as the reference path.
                out = merge_polarity_v(out);
            }
            lanes[pos] = out.store();
            if pos < l {
                for &obs in plan.observes_of(id) {
                    path_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
                }
            }
            prev = id;
        }

        // Shared tail: member `k` sits at cone position `l + k`. The
        // tail stores only topological positions; kinds and pins come
        // off the plans' per-position tables, and each pin classifies
        // on the fly against the walked cone: positions are stamped
        // with the site's epoch as their members are evaluated, every
        // fanin position is strictly below its consumer's, and no tail
        // member can read a path node (a path node's single successor
        // is the next path node) — so a current-epoch stamp is exactly
        // the old packed on-path ref, and anything else resolves by
        // signal probability. Same values, same order: bit-identical.
        let positions = tail.positions();
        pos_stamp[positions[0] as usize] = epoch | l as u64;
        for (k, &q) in positions.iter().enumerate().skip(1) {
            // Stay a few positions ahead of the walk: the per-position
            // fanin rows live in the shared plan arena, which outgrows
            // the LLC on the larger circuits, and the row address is
            // data-dependent (position → CSR offset → row), so the
            // hardware prefetcher cannot follow it.
            if let Some(&qn) = positions.get(k + PREFETCH_DISTANCE) {
                if let Some(first) = plans.fanins_at(qn).first() {
                    crate::simd::prefetch_t0(first);
                }
            }
            let op = RuleOp::of(plans.kind_at(q));
            let lanes_now: &[Lane4] = lanes;
            let stamp: &[u64] = pos_stamp;
            // Branchless fanin gather: whether a fanin is on-path is
            // data-dependent (the shared tail serves every site), so an
            // `if` here mispredicts constantly. Both candidate slots
            // are always safely indexable — stamps only ever hold
            // positions below the workspace high-water mark, and the
            // packed ref of an on-path fanin decodes to a harmless
            // in-range placeholder — so we resolve both and let a
            // conditional move pick the address.
            let gather = move |&(pf, off): &(u32, u32)| -> V {
                let s = stamp[pf as usize];
                let on_path = s & !0xFFFF_FFFF == epoch;
                let off_idx = match FaninRef::decode(off) {
                    FaninRef::OffPath(idx) => idx,
                    // Packed tail refs are always off-path; this arm
                    // only fires when `on_path` already won the select.
                    FaninRef::OnPath(_) => 0,
                };
                let src = std::hint::select_unpredictable(
                    on_path,
                    &lanes_now[(s as u32) as usize],
                    &sp_lanes[off_idx],
                );
                V::load(src)
            };
            let fanins = plans.fanins_at(q);
            let mut out = if fanins.len() == 2 {
                propagate2_v(op, gather(&fanins[0]), gather(&fanins[1]))
            } else {
                propagate_fused_v(op, fanins.iter().map(gather))
            };
            if polarity == PolarityMode::Merged {
                out = merge_polarity_v(out);
            }
            lanes[l + k] = out.store();
            pos_stamp[q as usize] = epoch | (l + k) as u64;
        }

        // Emit points in observe order: merge the sorted path observes
        // with the tail's (indices are unique per site, so the merge
        // is a strict interleave — the reference emission order).
        path_obs.sort_unstable();
        let tobs = tail.observe_refs();
        let observe: &[ObservePoint] = self.artifacts().observe_points();
        let first = points_out.len();
        let l32 = u32::try_from(l).expect("cone fits u32");
        let (mut i, mut j) = (0, 0);
        while i < path_obs.len() || j < tobs.len() {
            let take_path = j >= tobs.len() || (i < path_obs.len() && path_obs[i].0 < tobs[j].0);
            let (obs, local) = if take_path {
                let r = path_obs[i];
                i += 1;
                r
            } else {
                let r = (tobs[j].0, tobs[j].1 + l32);
                j += 1;
                r
            };
            points_out.push(PointEpp {
                point: observe[obs as usize],
                value: FourValue::from_lanes(lanes[local as usize].0),
            });
        }
        let p_sensitized =
            combine_sensitization(points_out[first..].iter().map(PointEpp::p_arrival));
        let gates = u32::try_from(len - 1).expect("cone fits u32");
        let n_points = u32::try_from(points_out.len() - first).expect("points fit u32");
        (p_sensitized, gates, n_points)
    }

    /// The AVX2 monomorphization of [`plan_kernel`](Self::plan_kernel)
    /// behind the one `target_feature` boundary: everything between
    /// here and the `__m256d` intrinsics is `#[inline(always)]`, so
    /// the whole per-site kernel compiles as a single AVX2 function.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the host supports AVX2
    /// (`is_x86_feature_detected!("avx2")`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn plan_kernel_avx2(
        &self,
        plans: &ConePlans,
        site: NodeId,
        polarity: PolarityMode,
        ws: &mut SweepWorkspace,
        points_out: &mut Vec<PointEpp>,
    ) -> (f64, u32, u32) {
        self.plan_kernel::<AvxVec>(plans, site, polarity, ws, points_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn analysis(c: &ser_netlist::Circuit) -> EppAnalysis {
        let sp = IndependentSp::new()
            .compute(c, &InputProbs::default())
            .unwrap();
        EppAnalysis::new(c, sp).unwrap()
    }

    const FIG1: &str = "
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
";

    #[test]
    fn sweep_matches_per_site_reference_bitwise() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let sweep = epp.sweep_with(polarity, 1, &pool);
            assert_eq!(sweep.len(), c.len());
            for id in c.node_ids() {
                let reference = epp.site_with(id, polarity);
                let batched = sweep.site(id);
                assert_eq!(batched.site(), reference.site());
                // Exact f64 equality — bit-identity, not epsilon.
                assert_eq!(batched.p_sensitized(), reference.p_sensitized());
                assert_eq!(batched.on_path_gates(), reference.on_path_gates());
                assert_eq!(batched.per_point(), reference.per_point());
                assert_eq!(batched.to_site_epp(), reference);
            }
        }
    }

    #[test]
    fn forced_backends_are_bit_identical() {
        // Big enough that chains, shared tails and both gather paths
        // are all exercised; every backend the host can run must agree
        // bitwise with the per-site reference.
        let c = ser_gen_like_chain(120);
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let sites: Vec<ser_netlist::NodeId> = c.node_ids().collect();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let scalar =
                epp.sweep_sites_with_backend(&sites, polarity, 1, &pool, KernelBackend::Scalar);
            let forced_avx2 =
                epp.sweep_sites_with_backend(&sites, polarity, 1, &pool, KernelBackend::Avx2);
            assert_eq!(scalar, forced_avx2, "{polarity:?}");
            for &site in &sites {
                assert_eq!(
                    scalar.site(site).to_site_epp(),
                    epp.site_with(site, polarity),
                    "{polarity:?}"
                );
            }
        }
    }

    #[test]
    fn sp_plane_is_pinned_and_rebuilt_on_new_sp() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let _ = epp.sweep(1, &pool);
        {
            let slots = pool.checkout_sweep();
            assert!(slots
                .sp_pin
                .as_ref()
                .is_some_and(|p| Arc::ptr_eq(p, epp.sp_arc())));
            assert_eq!(slots.sp_lanes.len(), c.len());
            pool.give_back_sweep(slots);
        }
        // A different SP allocation (same values) must rebuild the plane.
        let sp2 = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let epp2 = EppAnalysis::new(&c, sp2).unwrap();
        let r1 = epp.sweep(1, &pool);
        let r2 = epp2.sweep(1, &pool);
        assert_eq!(r1, r2);
        let slots = pool.checkout_sweep();
        assert!(slots
            .sp_pin
            .as_ref()
            .is_some_and(|p| Arc::ptr_eq(p, epp2.sp_arc())));
        pool.give_back_sweep(slots);
    }

    #[test]
    fn subset_sweep_preserves_request_order() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let h = c.find("H").unwrap();
        let a = c.find("A").unwrap();
        let subset = [h, a];
        let sweep = epp.sweep_sites_with(&subset, PolarityMode::Tracked, 1, &pool);
        assert_eq!(sweep.sites(), &subset);
        assert_eq!(sweep.get(0).site(), h);
        assert_eq!(sweep.get(1).site(), a);
        assert_eq!(sweep.site(a).to_site_epp(), epp.site(a));
        assert_eq!(sweep.site(h).to_site_epp(), epp.site(h));
    }

    #[test]
    #[should_panic(expected = "was not analyzed")]
    fn subset_sweep_rejects_unanalyzed_site() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let h = c.find("H").unwrap();
        let sweep = epp.sweep_sites_with(&[h], PolarityMode::Tracked, 1, &pool);
        let _ = sweep.site(c.find("A").unwrap());
    }

    #[test]
    fn small_sweeps_run_single_threaded() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let sweep = epp.sweep(8, &pool);
        assert!(c.len() < SINGLE_THREAD_SWEEP_THRESHOLD);
        assert_eq!(sweep.threads_used(), 1);
    }

    #[test]
    fn parallel_sweep_reports_workers_and_matches_sequential() {
        // Large enough to cross the threshold.
        let c = ser_gen_like_chain(200);
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let seq = epp.sweep(1, &pool);
        let par = epp.sweep(4, &pool);
        assert_eq!(seq.threads_used(), 1);
        assert!(par.threads_used() >= 2, "got {}", par.threads_used());
        assert_eq!(seq.p_sensitized(), par.p_sensitized());
        assert_eq!(seq.to_site_epps(), par.to_site_epps());
    }

    /// A long AND chain with a side input per stage: cone sizes vary
    /// from the whole chain down to 1, exercising the cost balancing.
    fn ser_gen_like_chain(stages: usize) -> ser_netlist::Circuit {
        let mut src = String::from("INPUT(x0)\n");
        for i in 0..stages {
            src.push_str(&format!("INPUT(s{i})\n"));
        }
        src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
        for i in 0..stages {
            let prev = if i == 0 {
                "x0".to_owned()
            } else {
                format!("g{}", i - 1)
            };
            src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
        }
        parse_bench(&src, "chain").unwrap()
    }

    #[test]
    fn planless_fallback_is_bit_identical() {
        // When the plan arena is declined for size, sweep_impl runs the
        // per-site reference kernel under the same scheduler. Force the
        // planless path directly and compare against the planned one.
        let c = ser_gen_like_chain(200);
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let sites: Vec<ser_netlist::NodeId> = c.node_ids().collect();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let planned = epp.sweep_with(polarity, 1, &pool);
            for threads in [1usize, 4] {
                for backend in [KernelBackend::Scalar, KernelBackend::Avx2.sanitized()] {
                    let planless = epp.sweep_impl(&sites, polarity, threads, &pool, None, backend);
                    assert_eq!(planless, planned, "{threads} threads ({polarity:?})");
                }
            }
        }
        // The fallback checked out per-site workspaces, not sweep ones.
        assert!(pool.idle() >= 1);
    }

    #[test]
    fn sweep_workspaces_are_pooled() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle_sweep(), 0);
        let _ = epp.sweep(1, &pool);
        assert_eq!(pool.idle_sweep(), 1);
        let _ = epp.sweep(1, &pool);
        assert_eq!(pool.idle_sweep(), 1, "reused, not re-created");
    }

    #[test]
    fn dead_and_observed_sites_round_trip() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let sweep = epp.sweep(1, &pool);
        let u = c.find("u").unwrap();
        assert_eq!(sweep.site(u).p_sensitized(), 0.0);
        assert!(sweep.site(u).per_point().is_empty());
        let b = c.find("b").unwrap();
        assert_eq!(sweep.site(b).p_sensitized(), 1.0);
        assert_eq!(sweep.site(b).arrival_at(b).unwrap().pa(), 1.0);
        assert_eq!(sweep.total_points(), 1, "only b's own arrival is stored");
    }

    #[test]
    fn empty_site_list_is_fine() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c);
        let pool = WorkspacePool::new();
        let sweep = epp.sweep_sites_with(&[], PolarityMode::Tracked, 2, &pool);
        assert!(sweep.is_empty());
        assert_eq!(sweep.len(), 0);
        assert_eq!(sweep.total_points(), 0);
    }
}
