//! The one-pass EPP engine — the paper's algorithm, steps 1–3, plus the
//! `P_sensitized` combination.
//!
//! For every error site:
//!
//! 1. **Path construction** — extract the fanout cone (on-path signals
//!    and gates) by forward DFS over an epoch-stamped visited array.
//! 2. **Ordering** — sort the cone by precomputed topological position
//!    (`O(cone log cone)`, not `O(circuit)`).
//! 3. **EPP computation** — apply the Table-1 rules gate by gate, using
//!    four-value tuples on on-path signals and signal probabilities on
//!    off-path signals; a single linear pass per site.
//!
//! Finally `P_sensitized(n) = 1 − Π_j (1 − (Pa(POj) + Pā(POj)))` over
//! the observe points reachable from `n`.

use std::sync::{Arc, Mutex};

use ser_netlist::{Circuit, GateKind, NetlistError, NodeId, ObservePoint, TopoArtifacts};
use ser_sp::SpVector;

use crate::four_value::FourValue;
use crate::rules::propagate;

/// Whether the EPP pass distinguishes the two error polarities.
///
/// [`PolarityMode::Tracked`] is the paper's method: `Pa` and `Pā` are
/// separate, so opposite-polarity reconvergence (e.g. `a AND ā = 0`)
/// is handled. [`PolarityMode::Merged`] collapses them after every gate
/// — the naive "single erroneous value" model prior work used, kept as
/// an ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolarityMode {
    /// Track `Pa` and `Pā` separately (the paper's contribution).
    Tracked,
    /// Merge both polarities into one error probability after each gate.
    Merged,
}

/// Error arrival at one observe point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEpp {
    /// The observe point (primary output or flip-flop).
    pub point: ObservePoint,
    /// The four-value tuple at the observed signal.
    pub value: FourValue,
}

impl PointEpp {
    /// `Pa + Pā` at this point.
    #[must_use]
    pub fn p_arrival(&self) -> f64 {
        self.value.p_arrival()
    }
}

/// The result of one per-site EPP pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteEpp {
    site: NodeId,
    per_point: Vec<PointEpp>,
    p_sensitized: f64,
    on_path_gates: usize,
}

impl SiteEpp {
    /// Assembles a result from already-computed parts (the batched
    /// sweep's conversion into the owned per-site form).
    pub(crate) fn from_parts(
        site: NodeId,
        per_point: Vec<PointEpp>,
        p_sensitized: f64,
        on_path_gates: usize,
    ) -> Self {
        SiteEpp {
            site,
            per_point,
            p_sensitized,
            on_path_gates,
        }
    }

    /// The error site analyzed.
    #[must_use]
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// Error arrival per reachable observe point.
    #[must_use]
    pub fn per_point(&self) -> &[PointEpp] {
        &self.per_point
    }

    /// The paper's `P_sensitized`: probability the erroneous value
    /// reaches at least one output or flip-flop.
    #[must_use]
    pub fn p_sensitized(&self) -> f64 {
        self.p_sensitized
    }

    /// Number of on-path gates the pass visited (cost indicator).
    #[must_use]
    pub fn on_path_gates(&self) -> usize {
        self.on_path_gates
    }

    /// Arrival tuple at a specific observed signal, if reachable.
    #[must_use]
    pub fn arrival_at(&self, signal: NodeId) -> Option<FourValue> {
        self.per_point
            .iter()
            .find(|p| p.point.signal() == signal)
            .map(|p| p.value)
    }
}

/// The compiled EPP analysis for one circuit: topological order and
/// signal probabilities are computed once, then any number of sites can
/// be analyzed in linear time each.
///
/// The analysis **owns** its circuit (`Arc<Circuit>`): no lifetime
/// parameter, `Clone` is O(1) (three `Arc` bumps), and values are
/// `Send + Sync + 'static`, so they can be cached in a service, moved
/// into worker closures or shared across threads freely.
///
/// # Examples
///
/// The paper's Fig. 1, reproduced end to end:
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{InputProbs, IndependentSp, SpEngine};
/// use ser_epp::EppAnalysis;
///
/// // B, C, F carry the signal probabilities of the figure.
/// let c = parse_bench("
/// INPUT(A)
/// INPUT(B)
/// INPUT(C)
/// INPUT(F)
/// OUTPUT(H)
/// E = NOT(A)
/// D = AND(A, B)
/// G = AND(E, F)
/// H = OR(C, D, G)
/// ", "fig1")?;
/// let b = c.find("B").unwrap();
/// let cc = c.find("C").unwrap();
/// let ff = c.find("F").unwrap();
/// let probs = InputProbs::uniform(0.5).with(b, 0.2).with(cc, 0.3).with(ff, 0.7);
/// let sp = IndependentSp::new().compute(&c, &probs)?;
/// let epp = EppAnalysis::new(&c, sp)?;
///
/// let site = c.find("A").unwrap();
/// let result = epp.site(site);
/// let h = c.find("H").unwrap();
/// let at_h = result.arrival_at(h).unwrap();
/// assert!((at_h.pa() - 0.042).abs() < 1e-12);
/// assert!((at_h.pa_bar() - 0.392).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EppAnalysis {
    circuit: Arc<Circuit>,
    /// Shared structural artifacts: topological positions (cone nodes
    /// are sorted by these, making a site pass O(cone log cone) instead
    /// of O(circuit)) and precomputed observe points. Behind an `Arc`
    /// so a session can hand the same compilation to every consumer.
    topo: Arc<TopoArtifacts>,
    sp: Arc<SpVector>,
}

/// Reusable per-thread scratch for the per-site pass: epoch-stamped
/// membership and value arrays, so consecutive sites cost O(cone)
/// rather than O(circuit) to set up.
#[derive(Debug, Clone)]
pub struct SiteWorkspace {
    stamp: Vec<u32>,
    epoch: u32,
    values: Vec<FourValue>,
    cone: Vec<NodeId>,
    stack: Vec<NodeId>,
    fanin_buf: Vec<FourValue>,
}

impl SiteWorkspace {
    /// Creates a workspace sized for `analysis`' circuit.
    #[must_use]
    pub fn new(analysis: &EppAnalysis) -> Self {
        let n = analysis.circuit.len();
        SiteWorkspace {
            stamp: vec![0; n],
            epoch: 0,
            values: vec![FourValue::error_site(); n],
            cone: Vec::new(),
            stack: Vec::new(),
            fanin_buf: Vec::with_capacity(8),
        }
    }
}

impl EppAnalysis {
    /// Compiles the analysis: one topological sort, plus the signal
    /// probabilities the off-path handling will read.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic
    /// combinational graphs.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not cover exactly `circuit.len()` nodes.
    pub fn new(circuit: impl Into<Arc<Circuit>>, sp: SpVector) -> Result<Self, NetlistError> {
        let circuit = circuit.into();
        let topo = Arc::new(TopoArtifacts::compute(&circuit)?);
        Ok(Self::from_artifacts(circuit, topo, Arc::new(sp)))
    }

    /// Builds the analysis from already-compiled artifacts — the
    /// no-recompute constructor the session layer uses. The `Arc`s are
    /// cloned, not deep-copied, so this is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `topo` or `sp` do not cover exactly `circuit.len()`
    /// nodes.
    #[must_use]
    pub fn from_artifacts(
        circuit: impl Into<Arc<Circuit>>,
        topo: Arc<TopoArtifacts>,
        sp: Arc<SpVector>,
    ) -> Self {
        let circuit = circuit.into();
        assert_eq!(
            topo.len(),
            circuit.len(),
            "topo artifacts must cover every node"
        );
        assert_eq!(
            sp.len(),
            circuit.len(),
            "signal probabilities must cover every node"
        );
        EppAnalysis { circuit, topo, sp }
    }

    /// The circuit under analysis.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared handle to that circuit (O(1) to clone).
    #[must_use]
    pub fn circuit_arc(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The shared structural artifacts this analysis runs on.
    #[must_use]
    pub fn artifacts(&self) -> &Arc<TopoArtifacts> {
        &self.topo
    }

    /// The signal probabilities in use.
    #[must_use]
    pub fn signal_probabilities(&self) -> &SpVector {
        &self.sp
    }

    /// The shared SP handle — what the sweep workspaces pin their
    /// off-path SP lane plane to (`Arc::ptr_eq` identity).
    pub(crate) fn sp_arc(&self) -> &Arc<SpVector> {
        &self.sp
    }

    /// Runs the one-pass EPP computation for one error site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for the circuit.
    #[must_use]
    pub fn site(&self, site: NodeId) -> SiteEpp {
        self.site_with(site, PolarityMode::Tracked)
    }

    /// Like [`site`](Self::site) but with an explicit polarity mode —
    /// the ablation hook for the paper's key design choice.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for the circuit.
    #[must_use]
    pub fn site_with(&self, site: NodeId, polarity: PolarityMode) -> SiteEpp {
        let mut ws = SiteWorkspace::new(self);
        self.site_with_workspace(site, polarity, &mut ws)
    }

    /// The allocation-free kernel: like [`site_with`](Self::site_with)
    /// but reusing a caller-provided [`SiteWorkspace`] (the whole-
    /// circuit sweep calls this once per node per thread).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range or the workspace was built for
    /// a different circuit.
    #[must_use]
    pub fn site_with_workspace(
        &self,
        site: NodeId,
        polarity: PolarityMode,
        ws: &mut SiteWorkspace,
    ) -> SiteEpp {
        assert_eq!(ws.stamp.len(), self.circuit.len(), "workspace circuit");
        // New epoch: previous stamps invalidate in O(1). On wrap, reset.
        ws.epoch = ws.epoch.wrapping_add(1);
        if ws.epoch == 0 {
            ws.stamp.fill(0);
            ws.epoch = 1;
        }
        let epoch = ws.epoch;

        // --- 1. Path construction: forward DFS, stopping at DFFs. ------
        ws.cone.clear();
        ws.stack.clear();
        ws.stack.push(site);
        ws.stamp[site.index()] = epoch;
        ws.cone.push(site);
        while let Some(id) = ws.stack.pop() {
            for &succ in self.circuit.node(id).fanout() {
                if self.circuit.node(succ).kind() == GateKind::Dff {
                    continue; // latched, not combinationally propagated
                }
                if ws.stamp[succ.index()] != epoch {
                    ws.stamp[succ.index()] = epoch;
                    ws.cone.push(succ);
                    ws.stack.push(succ);
                }
            }
        }

        // --- 2. Ordering: sort cone members topologically. --------------
        ws.cone.sort_unstable_by_key(|id| self.topo.position(*id));

        // --- 3. EPP computation: one pass over the cone. ----------------
        ws.values[site.index()] = FourValue::error_site();
        let mut gates = 0usize;
        for &id in &ws.cone {
            if id == site {
                continue;
            }
            let node = self.circuit.node(id);
            debug_assert!(
                node.kind().is_logic(),
                "on-path non-site nodes are logic gates"
            );
            ws.fanin_buf.clear();
            for &f in node.fanin() {
                let tuple = if ws.stamp[f.index()] == epoch {
                    ws.values[f.index()]
                } else {
                    // Off-path signal: described by its signal probability.
                    FourValue::from_signal_probability(self.sp.get(f))
                };
                ws.fanin_buf.push(tuple);
            }
            let mut out = propagate(node.kind(), &ws.fanin_buf);
            if polarity == PolarityMode::Merged {
                // Collapse Pā into Pa after every gate: the "single
                // error value" approximation the paper improves on.
                out = FourValue::new_clamped(out.p_arrival(), 0.0, out.p0(), out.p1());
            }
            ws.values[id.index()] = out;
            gates += 1;
        }

        let per_point: Vec<PointEpp> = self
            .topo
            .observe_points()
            .iter()
            .filter(|p| ws.stamp[p.signal().index()] == epoch)
            .map(|&point| PointEpp {
                point,
                value: ws.values[point.signal().index()],
            })
            .collect();
        let p_sensitized = combine_sensitization(per_point.iter().map(PointEpp::p_arrival));
        SiteEpp {
            site,
            per_point,
            p_sensitized,
            on_path_gates: gates,
        }
    }

    /// Analyzes every node of the circuit (the paper's "we consider all
    /// circuit nodes as possible error sites").
    ///
    /// Convenience wrapper over the batched [`sweep`](Self::sweep)
    /// engine, converting into owned per-site results. Callers that
    /// only read the results should prefer `sweep` itself — it keeps
    /// everything in one flat arena.
    #[must_use]
    pub fn all_sites(&self) -> Vec<SiteEpp> {
        let pool = WorkspacePool::new();
        self.all_sites_parallel_with_pool(1, &pool)
    }

    /// Analyzes every node using `threads` worker threads (sites are
    /// independent, so this is embarrassingly parallel).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn all_sites_parallel(&self, threads: usize) -> Vec<SiteEpp> {
        let pool = WorkspacePool::new();
        self.all_sites_parallel_with_pool(threads, &pool)
    }

    /// Like [`all_sites_parallel`](Self::all_sites_parallel), but
    /// checking per-thread scratch out of a caller-owned
    /// [`WorkspacePool`] and returning it afterwards — so a session
    /// running repeated sweeps (re-ranking after an input-probability
    /// change, ablations over polarity modes) allocates its workspaces
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn all_sites_parallel_with_pool(
        &self,
        threads: usize,
        pool: &WorkspacePool,
    ) -> Vec<SiteEpp> {
        self.sweep_with(PolarityMode::Tracked, threads, pool)
            .to_site_epps()
    }
}

/// A checkout pool of per-thread scratch shared across sweeps and
/// threads: workers pop a workspace (or lazily create one), run their
/// batch allocation-free, and push it back for the next sweep. Two
/// kinds of scratch live here: [`SiteWorkspace`]s for the per-site
/// reference path and [`SweepWorkspace`](crate::SweepWorkspace)s for
/// the batched cone-plan engine.
///
/// The pool is intentionally dumb — mutexed stacks. It is touched
/// twice per worker per sweep, so contention is irrelevant; what
/// matters is that the scratch buffers survive between sweeps instead
/// of being reallocated.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    slots: Mutex<Vec<SiteWorkspace>>,
    sweep_slots: Mutex<Vec<crate::sweep::SweepWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on first checkout.
    #[must_use]
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Pops a pooled workspace sized for `analysis`' circuit, or
    /// creates a fresh one. Pooled workspaces sized for a *different*
    /// circuit (a pool outliving its circuit and being reused) are
    /// quietly dropped and replaced rather than panicking.
    #[must_use]
    pub fn checkout(&self, analysis: &EppAnalysis) -> SiteWorkspace {
        let mut slots = self.slots.lock().expect("pool lock");
        while let Some(ws) = slots.pop() {
            if ws.stamp.len() == analysis.circuit.len() {
                return ws;
            }
            // Sized for another circuit: stale scratch, discard it.
        }
        drop(slots);
        SiteWorkspace::new(analysis)
    }

    /// Returns a workspace to the pool for reuse.
    pub fn give_back(&self, ws: SiteWorkspace) {
        self.slots.lock().expect("pool lock").push(ws);
    }

    /// Pops pooled sweep scratch, or creates fresh scratch. Sweep
    /// workspaces grow to fit whatever cone plan they evaluate, so no
    /// size check is needed.
    #[must_use]
    pub fn checkout_sweep(&self) -> crate::sweep::SweepWorkspace {
        self.sweep_slots
            .lock()
            .expect("pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns sweep scratch to the pool for reuse.
    pub fn give_back_sweep(&self, ws: crate::sweep::SweepWorkspace) {
        self.sweep_slots.lock().expect("pool lock").push(ws);
    }

    /// Number of idle per-site workspaces currently pooled.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("pool lock").len()
    }

    /// Number of idle sweep workspaces currently pooled.
    #[must_use]
    pub fn idle_sweep(&self) -> usize {
        self.sweep_slots.lock().expect("pool lock").len()
    }
}

/// The paper's combination:
/// `P_sensitized = 1 − Π_j (1 − arrival_j)`.
#[must_use]
pub fn combine_sensitization<I: IntoIterator<Item = f64>>(arrivals: I) -> f64 {
    let miss: f64 = arrivals
        .into_iter()
        .map(|p| (1.0 - p).clamp(0.0, 1.0))
        .product();
    (1.0 - miss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn analysis(c: &Circuit, probs: &InputProbs) -> EppAnalysis {
        let sp = IndependentSp::new().compute(c, probs).unwrap();
        EppAnalysis::new(c, sp).unwrap()
    }

    const FIG1: &str = "
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
";

    #[test]
    fn figure1_full_walkthrough() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let b = c.find("B").unwrap();
        let cc = c.find("C").unwrap();
        let ff = c.find("F").unwrap();
        let probs = InputProbs::uniform(0.5)
            .with(b, 0.2)
            .with(cc, 0.3)
            .with(ff, 0.7);
        let epp = analysis(&c, &probs);
        let result = epp.site(c.find("A").unwrap());

        // Intermediate values from the paper:
        // P(E) = 1(ā), P(G) = 0.7(ā) + 0.3(0), P(D) = 0.2(a) + 0.8(0).
        // Final: P(H) = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1).
        let h = result.arrival_at(c.find("H").unwrap()).unwrap();
        assert!((h.pa() - 0.042).abs() < 1e-12);
        assert!((h.pa_bar() - 0.392).abs() < 1e-12);
        assert!((h.p0() - 0.168).abs() < 1e-12);
        assert!((h.p1() - 0.398).abs() < 1e-12);
        // One output: P_sensitized = Pa + Pā = 0.434.
        assert!((result.p_sensitized() - 0.434).abs() < 1e-12);
        // On-path gates: E, D, G, H.
        assert_eq!(result.on_path_gates(), 4);
        assert_eq!(result.site(), c.find("A").unwrap());
    }

    #[test]
    fn single_path_inverter_chain() {
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nu = NOT(a)\nv = NOT(u)\ny = NOT(v)\n",
            "ch",
        )
        .unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let r = epp.site(c.find("a").unwrap());
        assert_eq!(r.p_sensitized(), 1.0);
        // Odd number of inversions: arrives as ā.
        let y = r.arrival_at(c.find("y").unwrap()).unwrap();
        assert_eq!(y.pa_bar(), 1.0);
    }

    #[test]
    fn multi_output_combination() {
        // y1 = AND(a, b) [arrival 0.5], y2 = AND(a, c) [arrival 0.5]:
        // P_sens = 1 - 0.5*0.5 = 0.75 (exact here: b, c independent).
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = AND(a, c)\n",
            "m",
        )
        .unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let r = epp.site(c.find("a").unwrap());
        assert_eq!(r.per_point().len(), 2);
        assert!((r.p_sensitized() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unobservable_site_is_zero() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let r = epp.site(c.find("u").unwrap());
        assert_eq!(r.p_sensitized(), 0.0);
        assert!(r.per_point().is_empty());
        assert_eq!(r.on_path_gates(), 0);
    }

    #[test]
    fn flip_flop_is_an_observe_point() {
        // site -> gate -> DFF: arrival at the D pin counts.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(d)\nd = AND(a, b)\n",
            "ff",
        )
        .unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let r = epp.site(c.find("a").unwrap());
        assert_eq!(r.per_point().len(), 1);
        assert!(r.per_point()[0].point.is_flip_flop());
        assert!((r.p_sensitized() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn site_epp_of_output_is_certain() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let h = c.find("H").unwrap();
        let r = epp.site(h);
        assert_eq!(r.p_sensitized(), 1.0);
        let at_h = r.arrival_at(h).unwrap();
        assert_eq!(at_h.pa(), 1.0);
    }

    #[test]
    fn all_sites_sequential_equals_parallel() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let seq = epp.all_sites();
        let par = epp.all_sites_parallel(4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pool_discards_workspaces_sized_for_another_circuit() {
        let small = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "small").unwrap();
        let big = parse_bench(FIG1, "fig1").unwrap();
        let probs = InputProbs::default();
        let epp_small = analysis(&small, &probs);
        let epp_big = analysis(&big, &probs);

        let pool = WorkspacePool::new();
        pool.give_back(pool.checkout(&epp_small));
        assert_eq!(pool.idle(), 1);

        // Regression: this used to panic ("pooled workspace sized for a
        // different circuit"). Now the stale workspace is dropped and a
        // correctly sized one is returned.
        let ws = pool.checkout(&epp_big);
        assert_eq!(ws.stamp.len(), big.len());
        pool.give_back(ws);
        assert_eq!(pool.idle(), 1, "stale scratch dropped, fresh one pooled");

        // And full sweeps can share one pool across circuits.
        let r_big = epp_big.all_sites_parallel_with_pool(2, &pool);
        let r_small = epp_small.all_sites_parallel_with_pool(2, &pool);
        assert_eq!(r_big.len(), big.len());
        assert_eq!(r_small.len(), small.len());
        // Results are unaffected by the pool's history.
        assert_eq!(r_small, epp_small.all_sites());
    }

    #[test]
    fn combine_sensitization_edge_cases() {
        assert_eq!(combine_sensitization([]), 0.0);
        assert_eq!(combine_sensitization([1.0]), 1.0);
        assert!((combine_sensitization([0.5, 0.5]) - 0.75).abs() < 1e-12);
        // Robust to tiny negative dust.
        assert!(combine_sensitization([1.0 + 1e-15]) <= 1.0);
    }

    #[test]
    fn merged_polarity_overestimates_on_figure1() {
        // On the paper's own example, collapsing polarity turns the
        // ā-vs-blocked distinction at H into extra "arrival" mass:
        // merged Pa(H) = 0.532 vs the correct Pa+Pā = 0.434.
        let c = parse_bench(FIG1, "fig1").unwrap();
        let b = c.find("B").unwrap();
        let cc = c.find("C").unwrap();
        let ff = c.find("F").unwrap();
        let probs = InputProbs::uniform(0.5)
            .with(b, 0.2)
            .with(cc, 0.3)
            .with(ff, 0.7);
        let epp = analysis(&c, &probs);
        let a = c.find("A").unwrap();
        let tracked = epp.site_with(a, PolarityMode::Tracked);
        let merged = epp.site_with(a, PolarityMode::Merged);
        assert!((tracked.p_sensitized() - 0.434).abs() < 1e-12);
        assert!((merged.p_sensitized() - 0.532).abs() < 1e-12);
        assert!(merged.p_sensitized() > tracked.p_sensitized());
        // And site() defaults to tracked.
        assert_eq!(epp.site(a), tracked);
    }

    #[test]
    fn xor_polarity_cancellation_detected() {
        // Two equal-parity paths into XOR: analytical EPP with polarity
        // tracking reports zero sensitization (matching reality).
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nu = NOT(a)\nv = NOT(a)\ny = XOR(u, v)\n",
            "cancel",
        )
        .unwrap();
        let epp = analysis(&c, &InputProbs::default());
        let r = epp.site(c.find("a").unwrap());
        assert_eq!(
            r.p_sensitized(),
            0.0,
            "polarity tracking must cancel equal-parity XOR reconvergence"
        );
    }
}
