//! Incremental what-if analysis: dirty-region re-analysis for the
//! rank → harden → re-rank loop.
//!
//! The paper's conclusion motivates EPP with selective hardening —
//! "identify the most vulnerable components to be protected" — and the
//! suite ships both halves of that loop ([`HardeningPlan`] ranks,
//! [`harden_tmr`] protects). But an edit used to mean a brand-new
//! circuit: new structural hash, new plan compile, full re-sweep. This
//! module makes an edit cost proportional to its *blast radius*
//! instead:
//!
//! 1. **SP forward recompute.** Signal probabilities are re-derived
//!    from the edit frontier only
//!    ([`IndependentSp::recompute_forward`]); upstream values are kept
//!    bit-for-bit.
//! 2. **Dirty region.** A site's sweep result can change only if its
//!    DFF-clipped cone evaluates different inputs: a member's kind or
//!    fanins changed, or a member reads a bitwise-changed signal
//!    probability (off-path pins included — which is why the seed set
//!    takes the *consumers* of every SP-changed node, not just the
//!    node). Site `s` is dirty iff `cone(s)` intersects that seed set,
//!    which is exactly `s ∈ backward-comb-closure(seeds)` — one
//!    [`TopoArtifacts::comb_ancestors`] pass over the fanin edges, no
//!    cone enumeration.
//! 3. **Two-tier re-sweep.** Dirty sites whose cone contains changed
//!    *structure* are re-swept on the edited circuit with the
//!    per-site reference kernel (no plan compile). Dirty sites whose
//!    cone is structurally untouched — only upstream SP moved — have
//!    bit-identical cone tables in the *previous* circuit, so they
//!    re-sweep on the already-compiled warm [`ConePlans`] with the new
//!    SP values remapped into the old id space. TMR of a *fanout-free*
//!    gate short-circuits both tiers: only the hardened gate's own
//!    observe point can change, and the cached arena already records
//!    each dirty site's four-value state there, so the new arrival is
//!    one TMR-voter rule application per site, patched in during the
//!    splice (`SweepResults::splice_tmr_sink`) with no cone walk at
//!    all.
//! 4. **Splice.** Clean sites are copied from the cached arena
//!    (observe-point ids remapped where the arena ids shifted); the
//!    re-swept tiers are spliced in by site id. Because every kernel
//!    involved is bit-identical and untouched cones read untouched
//!    inputs, the spliced arena equals a from-scratch sweep
//!    bit-for-bit — [`full_recompute`](WhatIfSession::full_recompute)
//!    is the enforcing oracle.
//!
//! Edits stack: each [`apply`](WhatIfSession::apply) pushes a state,
//! [`revert`](WhatIfSession::revert) pops one — the service's
//! `whatif` / `whatif_revert` ops drive exactly this pair.
//!
//! [`HardeningPlan`]: crate::HardeningPlan
//! [`harden_tmr`]: ser_netlist::harden_tmr
//! [`IndependentSp::recompute_forward`]: ser_sp::IndependentSp::recompute_forward
//! [`ConePlans`]: ser_netlist::ConePlans

use std::sync::Arc;
use std::time::{Duration, Instant};

use ser_netlist::{
    harden_tmr, swap_kind, CancelCause, CancelToken, Circuit, GateKind, NodeId, ObservePoint,
    TopoArtifacts,
};
use ser_sp::{IndependentSp, InputProbs, SpError, SpVector};

use crate::engine::{EppAnalysis, PointEpp, PolarityMode};
use crate::rules::propagate;
use crate::ser_model::{PlatchedModel, RseuModel, SerReport};
use crate::session::AnalysisSession;
use crate::sweep::SweepResults;

/// One circuit edit the what-if engine understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Protect one gate with triple modular redundancy
    /// ([`ser_netlist::harden_tmr`]); the voter keeps the gate's name.
    Tmr(NodeId),
    /// Replace one logic gate's kind in place
    /// ([`ser_netlist::swap_kind`]); names and fanins are untouched.
    SwapKind(NodeId, GateKind),
    /// Replace the input probability assignment.
    SetInputs(InputProbs),
}

/// Why a cancellable [`WhatIfSession::apply_cancellable`] ended
/// without pushing a state.
#[derive(Debug)]
pub enum WhatIfAbort {
    /// The edit was invalid or the edited circuit failed to compile.
    Compile(SpError),
    /// The cancellation token tripped between re-analysis tiers; the
    /// session's edit stack is untouched (no state was pushed).
    Cancelled(CancelCause),
}

impl std::fmt::Display for WhatIfAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfAbort::Compile(e) => e.fmt(f),
            WhatIfAbort::Cancelled(cause) => cause.fmt(f),
        }
    }
}

impl std::error::Error for WhatIfAbort {}

impl From<SpError> for WhatIfAbort {
    fn from(e: SpError) -> Self {
        WhatIfAbort::Compile(e)
    }
}

impl From<ser_netlist::NetlistError> for WhatIfAbort {
    fn from(e: ser_netlist::NetlistError) -> Self {
        WhatIfAbort::Compile(e.into())
    }
}

impl From<CancelCause> for WhatIfAbort {
    fn from(cause: CancelCause) -> Self {
        WhatIfAbort::Cancelled(cause)
    }
}

/// What one [`WhatIfSession::apply`] did and what it changed.
#[derive(Debug, Clone)]
pub struct WhatIfOutcome {
    /// Total SER before the edit.
    pub previous_total: f64,
    /// Total SER after the edit.
    pub total: f64,
    /// Sites whose results were re-derived (dirty region size).
    pub dirty_sites: usize,
    /// Dirty sites re-derived from warm cached state without touching
    /// the reference kernel: re-swept on the previous circuit's
    /// already-compiled cone plans (SP-only dirt), or — for a
    /// fanout-free TMR edit — patched directly from the arrival the
    /// cached arena already holds at the hardened gate's observe
    /// point. 0 when a cold session sends everything to the reference
    /// tier.
    pub resweep_planned: usize,
    /// Dirty sites re-swept with the reference kernel on the edited
    /// circuit (structurally dirty, or everything on a cold session).
    pub resweep_reference: usize,
    /// Sites in the edited circuit (`dirty_sites / total_sites` is the
    /// dirty fraction the bench reports).
    pub total_sites: usize,
    /// Edit-stack depth after this apply (base = 0).
    pub depth: usize,
    /// Wall-clock time of the incremental pass.
    pub elapsed: Duration,
    /// Per-site `P_sensitized` change for every dirty site, in site-id
    /// order of the edited circuit.
    pub deltas: Vec<SiteDelta>,
}

/// One dirty site's before/after `P_sensitized`.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDelta {
    /// Site id in the *edited* circuit.
    pub node: NodeId,
    /// The site's name — the stable key across edits (ids shift when
    /// TMR inserts nodes).
    pub name: String,
    /// `P_sensitized` before the edit; `None` for a site that did not
    /// exist (a TMR replica or voter-tree gate).
    pub old_p: Option<f64>,
    /// `P_sensitized` after the edit.
    pub new_p: f64,
}

/// One entry of the edit stack: a full analysis state.
#[derive(Debug, Clone)]
struct State {
    circuit: Arc<Circuit>,
    topo: Arc<TopoArtifacts>,
    inputs: InputProbs,
    sp: Arc<SpVector>,
    results: Arc<SweepResults>,
    total: f64,
}

/// An interactive what-if session: a base [`AnalysisSession`] plus its
/// cached whole-circuit [`SweepResults`], and a stack of edited states
/// each derived incrementally from the one below (module docs for the
/// algorithm).
///
/// Signal probabilities are maintained with the paper's default
/// [`IndependentSp`] engine; a base session compiled with a different
/// engine would break the bit-identity contract with
/// [`full_recompute`](Self::full_recompute).
#[derive(Debug)]
pub struct WhatIfSession {
    base: AnalysisSession,
    engine: IndependentSp,
    threads: usize,
    stack: Vec<State>,
}

impl WhatIfSession {
    /// Opens a session, paying one whole-circuit sweep to fill the
    /// base results cache (this also primes the circuit's cone plans,
    /// which the first edit's SP-only tier then reuses warm).
    #[must_use]
    pub fn new(session: AnalysisSession, threads: usize) -> Self {
        let results = Arc::new(session.epp().sweep(threads, session.workspace_pool()));
        Self::with_base_results(session, results, threads)
    }

    /// Opens a session around a sweep the caller already ran — how the
    /// service wraps a warm cache entry without re-sweeping.
    ///
    /// # Panics
    ///
    /// Panics if `results` is not a dense whole-circuit sweep of the
    /// session's circuit (every node a site, in id order).
    #[must_use]
    pub fn with_base_results(
        session: AnalysisSession,
        results: Arc<SweepResults>,
        threads: usize,
    ) -> Self {
        assert!(threads > 0, "at least one thread");
        assert!(
            results.len() == session.circuit().len()
                && results
                    .sites()
                    .iter()
                    .enumerate()
                    .all(|(i, s)| s.index() == i),
            "base results must be a dense whole-circuit sweep"
        );
        let total = Self::total_of(session.circuit(), &results);
        let state = State {
            circuit: Arc::clone(session.circuit_arc()),
            topo: Arc::clone(session.topo()),
            inputs: session.inputs().clone(),
            sp: Arc::clone(session.signal_probabilities_arc()),
            results,
            total,
        };
        WhatIfSession {
            base: session,
            engine: IndependentSp::new(),
            threads,
            stack: vec![state],
        }
    }

    fn total_of(circuit: &Circuit, results: &SweepResults) -> f64 {
        SerReport::assemble(
            circuit,
            results.p_sensitized(),
            &RseuModel::default(),
            &PlatchedModel::default(),
        )
        .total()
    }

    fn current(&self) -> &State {
        self.stack.last().expect("stack holds at least the base")
    }

    /// Edit-stack depth: 0 at the base, +1 per applied edit.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// The circuit of the current (topmost) state.
    #[must_use]
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.current().circuit
    }

    /// The input assignment of the current state.
    #[must_use]
    pub fn inputs(&self) -> &InputProbs {
        &self.current().inputs
    }

    /// The signal probabilities of the current state.
    #[must_use]
    pub fn signal_probabilities(&self) -> &Arc<SpVector> {
        &self.current().sp
    }

    /// The whole-circuit sweep results of the current state.
    #[must_use]
    pub fn results(&self) -> &Arc<SweepResults> {
        &self.current().results
    }

    /// Total SER of the current state (uniform `R_SEU`, constant
    /// `P_latched` — the ranking models).
    #[must_use]
    pub fn total_ser(&self) -> f64 {
        self.current().total
    }

    /// A full SER report over the current state.
    #[must_use]
    pub fn report(&self) -> SerReport {
        let cur = self.current();
        SerReport::assemble(
            &cur.circuit,
            cur.results.p_sensitized(),
            &RseuModel::default(),
            &PlatchedModel::default(),
        )
    }

    /// Applies one edit incrementally and pushes the resulting state.
    ///
    /// # Errors
    ///
    /// Returns the wrapped netlist error if the edit is invalid for
    /// the current circuit (non-logic TMR/swap target, arity-breaking
    /// kind, duplicate replica names from re-TMR of a hardened gate),
    /// or the SP engine's error if the edited circuit cannot be
    /// ordered or its sequential fixed point does not converge.
    pub fn apply(&mut self, edit: Edit) -> Result<WhatIfOutcome, SpError> {
        self.apply_cancellable(edit, None).map_err(|e| match e {
            WhatIfAbort::Compile(e) => e,
            WhatIfAbort::Cancelled(_) => {
                unreachable!("an apply without a token cannot be cancelled")
            }
        })
    }

    /// [`apply`](Self::apply) with a cooperative [`CancelToken`],
    /// polled between the re-analysis tiers (after the SP forward
    /// recompute, before each re-sweep tier, before the splice). A
    /// trip aborts with [`WhatIfAbort::Cancelled`] **before** any
    /// state is pushed: the edit stack, cached arenas and totals are
    /// exactly as they were, so a subsequent apply (or nothing at all)
    /// sees pre-request state.
    ///
    /// # Errors
    ///
    /// [`WhatIfAbort::Compile`] exactly where [`apply`](Self::apply)
    /// errors, [`WhatIfAbort::Cancelled`] when `cancel` trips at a
    /// tier boundary.
    pub fn apply_cancellable(
        &mut self,
        edit: Edit,
        cancel: Option<&CancelToken>,
    ) -> Result<WhatIfOutcome, WhatIfAbort> {
        let checkpoint = || -> Result<(), WhatIfAbort> {
            match cancel {
                Some(token) => Ok(token.check()?),
                None => Ok(()),
            }
        };
        let t0 = Instant::now();
        let cur = self.stack.last().expect("stack holds at least the base");

        // --- 1. Edited circuit + old→new id map + seed structure. ---
        let same_circuit = matches!(edit, Edit::SetInputs(_));
        let (circuit, fwd, structural_new, inputs) = match &edit {
            Edit::Tmr(node) => {
                let c = Arc::new(harden_tmr(&cur.circuit, &[*node])?);
                let fwd: Vec<NodeId> = cur
                    .circuit
                    .iter()
                    .map(|(_, n)| c.find(n.name()).expect("names survive TMR"))
                    .collect();
                let mut is_old = vec![false; c.len()];
                for &n in &fwd {
                    is_old[n.index()] = true;
                }
                // Changed structure: the inserted replica/voter-tree
                // gates, plus the voter itself (it keeps the edited
                // gate's name but computes a different function).
                let mut changed: Vec<NodeId> =
                    c.node_ids().filter(|n| !is_old[n.index()]).collect();
                changed.push(fwd[node.index()]);
                let inputs = remap_inputs(&cur.inputs, &cur.circuit, &c);
                (c, fwd, changed, inputs)
            }
            Edit::SwapKind(node, kind) => {
                let c = Arc::new(swap_kind(&cur.circuit, *node, *kind)?);
                debug_assert!(
                    cur.circuit
                        .iter()
                        .all(|(id, n)| c.node(id).name() == n.name()),
                    "kind swap preserves node ids"
                );
                let fwd: Vec<NodeId> = cur.circuit.node_ids().collect();
                (c, fwd, vec![*node], cur.inputs.clone())
            }
            Edit::SetInputs(new_inputs) => {
                let fwd: Vec<NodeId> = cur.circuit.node_ids().collect();
                (
                    Arc::clone(&cur.circuit),
                    fwd,
                    Vec::new(),
                    new_inputs.clone(),
                )
            }
        };
        let topo = if same_circuit {
            Arc::clone(&cur.topo)
        } else {
            Arc::new(TopoArtifacts::compute(&circuit)?)
        };

        // --- 2. SP forward recompute from the edit frontier. --------
        let sp = {
            let (base, frontier): (SpVector, Vec<NodeId>) = match &edit {
                Edit::Tmr(_) => {
                    // Old values carried into the new id space; the
                    // inserted gates start as placeholders and are
                    // seeded dirty, so the forward pass derives them.
                    let mut values = vec![0.0f64; circuit.len()];
                    for old in cur.circuit.node_ids() {
                        values[fwd[old.index()].index()] = cur.sp.get(old);
                    }
                    (SpVector::new(values), structural_new.clone())
                }
                Edit::SwapKind(node, _) => ((*cur.sp).clone(), vec![*node]),
                Edit::SetInputs(new_inputs) => {
                    let frontier: Vec<NodeId> = circuit
                        .node_ids()
                        .filter(|&id| circuit.node(id).kind() == GateKind::Input)
                        .filter(|&id| {
                            new_inputs.probability(id).to_bits()
                                != cur.inputs.probability(id).to_bits()
                        })
                        .collect();
                    ((*cur.sp).clone(), frontier)
                }
            };
            Arc::new(self.engine.recompute_forward(
                &circuit,
                &inputs,
                topo.order(),
                &base,
                &frontier,
            )?)
        };

        // SP recompute done — first tier boundary.
        checkpoint()?;

        // rev[new id] = old id, for splice copies and delta reporting.
        let mut rev: Vec<Option<NodeId>> = vec![None; circuit.len()];
        for old in cur.circuit.node_ids() {
            rev[fwd[old.index()].index()] = Some(old);
        }
        let remap_point = |p: ObservePoint| match p {
            ObservePoint::PrimaryOutput(id) => ObservePoint::PrimaryOutput(fwd[id.index()]),
            ObservePoint::FlipFlop { dff, data } => ObservePoint::FlipFlop {
                dff: fwd[dff.index()],
                data: fwd[data.index()],
            },
        };
        let pool = self.base.workspace_pool();

        // --- 3a. Sink-TMR fast path. --------------------------------
        // TMR of a fanout-free gate `g` changes no surviving node's SP
        // (the inserted gates have no old consumers), so the dirty
        // region is exactly g's combinational fan-in closure, and a
        // dirty site's per-point arrivals change **only** at g's own
        // primary-output observe point. No cone is re-walked: a stored
        // arrival at a primary output is the Tracked four-value state
        // of that node, the replicas reproduce that state bitwise
        // (same kind, same fanins, same on/off-path classification),
        // and the voter tree is two O(1) rule applications — so the
        // new arrival is the TMR voter rule applied to the arrival
        // each dirty site already has on record, substituted during
        // the splice with the paper's sensitization fold re-run in
        // observe order ([`SweepResults::splice_tmr_sink`]).
        let fast_target = match &edit {
            Edit::Tmr(node) if cur.circuit.node(*node).fanout().is_empty() => Some(*node),
            _ => None,
        };
        let (results, dirty, resweep_planned, resweep_reference) = if let Some(g) = fast_target {
            // No surviving node is downstream of the insertion, so
            // every carried SP value is bitwise intact — except g
            // itself, whose slot the voter (a different function)
            // takes over; nothing consumes it.
            debug_assert!(cur.circuit.node_ids().filter(|&old| old != g).all(|old| cur
                .sp
                .get(old)
                .to_bits()
                == sp.get(fwd[old.index()]).to_bits()));
            let g_idx = g.index();
            debug_assert_eq!(fwd[g_idx].index(), g_idx + 6, "voter follows its 6 inserts");

            // Region over old ids; the dirty mask over new ids.
            let region_old = cur.topo.comb_ancestors(&cur.circuit, std::iter::once(g));
            let mut fast = region_old.clone();
            fast[g_idx] = false;
            let mut dirty = vec![false; circuit.len()];
            for v in cur.circuit.node_ids() {
                if region_old[v.index()] {
                    dirty[fwd[v.index()].index()] = true;
                }
            }
            for n in &structural_new {
                dirty[n.index()] = true;
            }
            let fast_count = fast.iter().filter(|&&f| f).count();

            // The 7 structurally new/changed sites (replicas, voter
            // pairs, voter) re-sweep on the edited circuit; their
            // cones are the insertion itself.
            let struct_sites: Vec<NodeId> = (g_idx..g_idx + 7).map(NodeId::from_index).collect();
            let analysis_new = EppAnalysis::from_artifacts(
                Arc::clone(&circuit),
                Arc::clone(&topo),
                Arc::clone(&sp),
            );
            let struct_res = analysis_new.sweep_sites_unplanned(
                &struct_sites,
                PolarityMode::Tracked,
                self.threads,
                pool,
            );

            // Splice: bulk copy + in-place patch (the voter rule over
            // each dirty site's recorded arrival at g, one refold per
            // dirty site), the seven fresh sites in the gap.
            let results = cur
                .results
                .splice_tmr_sink(g_idx, &struct_res, &fast, |vr| {
                    let vt = propagate(GateKind::And, &[vr, vr]);
                    propagate(GateKind::Or, &[vt, vt, vt])
                });
            (results, dirty, fast_count, struct_sites.len())
        } else {
            // --- 3b. General path: dirty region, two-tier re-sweep,
            // splice. Seeds = changed structure ∪ SP-changed nodes ∪
            // their direct consumers (off-path pins read SP). --------
            let mut seeds: Vec<NodeId> = structural_new.clone();
            for old in cur.circuit.node_ids() {
                let new = fwd[old.index()];
                if cur.sp.get(old).to_bits() != sp.get(new).to_bits() {
                    seeds.push(new);
                    seeds.extend_from_slice(circuit.node(new).fanout());
                }
            }
            let dirty = topo.comb_ancestors(&circuit, seeds.iter().copied());
            let struct_dirty = topo.comb_ancestors(&circuit, structural_new.iter().copied());

            // Warm tier: SP-only-dirty sites have bit-identical cone
            // tables in the previous circuit, so they run on its
            // already-compiled plans with the new SP remapped into old
            // ids. Cold sessions (plans never compiled) send everything
            // to the reference tier instead.
            let warm = cur.topo.cone_plans_primed().is_some();
            let mut planned_mask = vec![false; circuit.len()];
            let mut reference_sites: Vec<NodeId> = Vec::new();
            let mut planned_sites_old: Vec<NodeId> = Vec::new();
            for i in 0..circuit.len() {
                if !dirty[i] {
                    continue;
                }
                if warm && !struct_dirty[i] {
                    planned_mask[i] = true;
                    planned_sites_old
                        .push(rev[i].expect("a structurally clean site survives the edit"));
                } else {
                    reference_sites.push(NodeId::from_index(i));
                }
            }
            // Reference tier boundary.
            checkpoint()?;
            let reference_results = if reference_sites.is_empty() {
                None
            } else {
                let analysis = EppAnalysis::from_artifacts(
                    Arc::clone(&circuit),
                    Arc::clone(&topo),
                    Arc::clone(&sp),
                );
                Some(analysis.sweep_sites_unplanned(
                    &reference_sites,
                    PolarityMode::Tracked,
                    self.threads,
                    pool,
                ))
            };
            // Planned (warm) tier boundary.
            checkpoint()?;
            let planned_results = if planned_sites_old.is_empty() {
                None
            } else {
                let remapped = if same_circuit {
                    Arc::clone(&sp)
                } else {
                    Arc::new(SpVector::new(
                        cur.circuit
                            .node_ids()
                            .map(|old| sp.get(fwd[old.index()]))
                            .collect(),
                    ))
                };
                let analysis = EppAnalysis::from_artifacts(
                    Arc::clone(&cur.circuit),
                    Arc::clone(&cur.topo),
                    remapped,
                );
                Some(analysis.sweep_sites_with(
                    &planned_sites_old,
                    PolarityMode::Tracked,
                    self.threads,
                    pool,
                ))
            };

            // Splice boundary: the last chance to abort before the
            // new arena is assembled.
            checkpoint()?;
            // Splice into a fresh dense arena. Both re-sweep site
            // lists and the splice walk ascend in new id order (the
            // old→new map is monotone), so plain cursors line results
            // up with sites.
            let mut ref_cursor = 0usize;
            let mut planned_cursor = 0usize;
            let results = SweepResults::assemble_dense(
                circuit.len(),
                cur.results.total_points(),
                |id, points| {
                    let i = id.index();
                    if let Some(res) = reference_results
                        .as_ref()
                        .filter(|_| dirty[i] && !planned_mask[i])
                    {
                        let site = res.get(ref_cursor);
                        ref_cursor += 1;
                        debug_assert_eq!(site.site(), id, "reference splice order");
                        points.extend_from_slice(site.per_point());
                        (site.p_sensitized(), gates_u32(site.on_path_gates()))
                    } else if planned_mask[i] {
                        let res = planned_results
                            .as_ref()
                            .expect("planned mask implies results");
                        let site = res.get(planned_cursor);
                        planned_cursor += 1;
                        debug_assert_eq!(Some(site.site()), rev[i], "planned splice order");
                        points.extend(site.per_point().iter().map(|p| PointEpp {
                            point: remap_point(p.point),
                            value: p.value,
                        }));
                        (site.p_sensitized(), gates_u32(site.on_path_gates()))
                    } else {
                        let old = rev[i].expect("a clean site survives the edit");
                        let site = cur.results.get(old.index());
                        points.extend(site.per_point().iter().map(|p| PointEpp {
                            point: remap_point(p.point),
                            value: p.value,
                        }));
                        (site.p_sensitized(), gates_u32(site.on_path_gates()))
                    }
                },
            );
            (
                results,
                dirty,
                planned_sites_old.len(),
                reference_sites.len(),
            )
        };

        // --- 4. Totals, deltas, push. --------------------------------
        let total = Self::total_of(&circuit, &results);
        let dirty_sites = dirty.iter().filter(|&&d| d).count();
        let deltas: Vec<SiteDelta> = circuit
            .node_ids()
            .filter(|id| dirty[id.index()])
            .map(|id| SiteDelta {
                node: id,
                name: circuit.node(id).name().to_owned(),
                old_p: rev[id.index()].map(|o| cur.results.p_sensitized()[o.index()]),
                new_p: results.p_sensitized()[id.index()],
            })
            .collect();
        let outcome = WhatIfOutcome {
            previous_total: cur.total,
            total,
            dirty_sites,
            resweep_planned,
            resweep_reference,
            total_sites: circuit.len(),
            depth: self.stack.len(),
            elapsed: t0.elapsed(),
            deltas,
        };
        let state = State {
            circuit,
            topo,
            inputs,
            sp,
            results: Arc::new(results),
            total,
        };
        self.stack.push(state);
        Ok(outcome)
    }

    /// Pops the topmost edit, restoring the previous state verbatim
    /// (results included — a revert re-derives nothing). Returns the
    /// restored total SER, or `None` at the base.
    pub fn revert(&mut self) -> Option<f64> {
        if self.stack.len() > 1 {
            self.stack.pop();
            Some(self.current().total)
        } else {
            None
        }
    }

    /// The oracle: analyzes the current state's circuit from scratch —
    /// fresh session, fresh plans, whole-circuit sweep — and returns
    /// `(results, total SER)`. The incremental state must agree
    /// bit-for-bit ([`SweepResults`] equality plus total bits); the
    /// proptests enforce it.
    ///
    /// # Errors
    ///
    /// Returns the SP engine's error (the same compile the base
    /// session ran).
    pub fn full_recompute(&self) -> Result<(SweepResults, f64), SpError> {
        let cur = self.current();
        let session = AnalysisSession::with_inputs(Arc::clone(&cur.circuit), cur.inputs.clone())?;
        let results = session.epp().sweep(self.threads, session.workspace_pool());
        let total = Self::total_of(&cur.circuit, &results);
        Ok((results, total))
    }
}

fn gates_u32(gates: usize) -> u32 {
    u32::try_from(gates).expect("on-path gate count fits u32")
}

/// Rebuilds an input assignment against a re-built circuit: ids
/// shifted, names survived.
fn remap_inputs(inputs: &InputProbs, old: &Circuit, new: &Circuit) -> InputProbs {
    let mut out = InputProbs::uniform(inputs.default_probability());
    for (id, p) in inputs.overrides() {
        if let Ok(node) = old.try_node(id) {
            if let Some(new_id) = new.find(node.name()) {
                out = out.with(new_id, p);
            }
        }
    }
    out
}
