//! Electrical masking — a derating extension beyond the paper.
//!
//! The paper computes *logical* masking (`P_sensitized`). Real
//! transients also shrink as they propagate: each gate attenuates the
//! pulse, and a pulse that arrives too small is not latched
//! (Shivakumar et al., DSN 2002 — reference [6] of the paper). The
//! standard first-order model derates an arrival by `α^d` where `d` is
//! the number of gates on the propagation path and `α ∈ (0, 1]` the
//! per-gate survival factor.
//!
//! The EPP pass does not track path *lengths* (a tuple may mix paths of
//! different depths), so this module uses the shortest on-path gate
//! distance from the site to each observe point — the path the least
//! attenuated pulse takes, making the derating an upper bound on the
//! electrically-surviving arrival.

use std::collections::VecDeque;

use ser_netlist::{Circuit, FanoutCone, GateKind, NodeId};

use crate::engine::combine_sensitization;
use crate::sweep::EppSiteView;

/// First-order electrical masking model.
///
/// # Examples
///
/// ```
/// use ser_epp::ElectricalMasking;
///
/// let ideal = ElectricalMasking::none();
/// assert_eq!(ideal.survival(5), 1.0);
///
/// let lossy = ElectricalMasking::new(0.9);
/// assert!((lossy.survival(2) - 0.81).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalMasking {
    alpha: f64,
}

impl ElectricalMasking {
    /// A model where a pulse survives each gate with probability
    /// (equivalently, retains amplitude fraction) `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha = {alpha} outside (0,1]"
        );
        ElectricalMasking { alpha }
    }

    /// The no-attenuation model (`α = 1`): pure logical masking,
    /// reducing exactly to the paper's numbers.
    #[must_use]
    pub fn none() -> Self {
        ElectricalMasking { alpha: 1.0 }
    }

    /// Survival factor across `depth` gates.
    #[must_use]
    pub fn survival(&self, depth: usize) -> f64 {
        self.alpha.powi(depth as i32)
    }

    /// Derates a site's `P_sensitized` by the shortest-path gate depth
    /// to each observe point:
    ///
    /// ```text
    /// P_eff = 1 − Π_j (1 − α^d_j · arrival_j)
    /// ```
    ///
    /// Accepts any per-site result view — an owned
    /// [`SiteEpp`](crate::SiteEpp) or a borrowed
    /// [`SweepSiteRef`](crate::SweepSiteRef) from a batched sweep.
    ///
    /// # Panics
    ///
    /// Panics if `site_epp` does not belong to `circuit` (signal ids out
    /// of range).
    #[must_use]
    pub fn derate<V: EppSiteView>(&self, circuit: &Circuit, site_epp: &V) -> f64 {
        if self.alpha == 1.0 {
            return site_epp.p_sensitized();
        }
        let depths = gate_depths_from(circuit, site_epp.site());
        combine_sensitization(site_epp.per_point().iter().map(|p| {
            let d = depths[p.point.signal().index()].unwrap_or(usize::MAX);
            if d == usize::MAX {
                0.0
            } else {
                self.survival(d) * p.p_arrival()
            }
        }))
    }
}

/// BFS over the fanout cone: number of *gates* on the shortest path
/// from `site` to each node (`None` when unreachable). The site itself
/// is at depth 0; a directly-driven gate is depth 1.
#[must_use]
pub fn gate_depths_from(circuit: &Circuit, site: NodeId) -> Vec<Option<usize>> {
    let cone = FanoutCone::extract(circuit, site);
    let mut depth: Vec<Option<usize>> = vec![None; circuit.len()];
    depth[site.index()] = Some(0);
    let mut queue = VecDeque::from([site]);
    while let Some(id) = queue.pop_front() {
        let d = depth[id.index()].expect("queued nodes have depth");
        for &succ in circuit.node(id).fanout() {
            if circuit.node(succ).kind() == GateKind::Dff {
                continue;
            }
            if cone.contains(succ) && depth[succ.index()].is_none() {
                depth[succ.index()] = Some(d + 1);
                queue.push_back(succ);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EppAnalysis;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn chain(n: usize) -> Circuit {
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\n");
        let mut prev = "a".to_owned();
        for i in 0..n {
            let name = if i == n - 1 {
                "y".into()
            } else {
                format!("g{i}")
            };
            src.push_str(&format!("{name} = NOT({prev})\n"));
            prev = name;
        }
        parse_bench(&src, "chain").unwrap()
    }

    #[test]
    fn depths_along_chain() {
        let c = chain(4);
        let a = c.find("a").unwrap();
        let depths = gate_depths_from(&c, a);
        assert_eq!(depths[a.index()], Some(0));
        assert_eq!(depths[c.find("g0").unwrap().index()], Some(1));
        assert_eq!(depths[c.find("y").unwrap().index()], Some(4));
    }

    #[test]
    fn unreachable_nodes_have_no_depth() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = NOT(b)\n",
            "t",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let depths = gate_depths_from(&c, a);
        assert_eq!(depths[c.find("z").unwrap().index()], None);
        assert_eq!(depths[c.find("b").unwrap().index()], None);
    }

    #[test]
    fn derating_compounds_with_depth() {
        // P_sens of `a` in a 4-inverter chain is 1.0 logically; with
        // α = 0.9 the effective arrival is 0.9^4.
        let c = chain(4);
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let a = c.find("a").unwrap();
        let site = analysis.site(a);
        assert_eq!(site.p_sensitized(), 1.0);
        let derated = ElectricalMasking::new(0.9).derate(&c, &site);
        assert!((derated - 0.9f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_identity() {
        let c = chain(3);
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let a = c.find("a").unwrap();
        let site = analysis.site(a);
        assert_eq!(
            ElectricalMasking::none().derate(&c, &site),
            site.p_sensitized()
        );
    }

    #[test]
    fn shortest_path_taken_on_reconvergent_routes() {
        // Two routes to y: length 1 (direct) and length 3; derating uses
        // the shortest (least attenuated).
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NOT(a)\nv = NOT(u)\ny = AND(a, v, b)\n",
            "recon",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let depths = gate_depths_from(&c, a);
        assert_eq!(depths[c.find("y").unwrap().index()], Some(1));
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn alpha_validated() {
        let _ = ElectricalMasking::new(0.0);
    }

    #[test]
    fn multi_output_derating() {
        // Two outputs at different depths.
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = NOT(a)\nu = NOT(y1)\ny2 = NOT(u)\n",
            "two",
        )
        .unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let a = c.find("a").unwrap();
        let site = analysis.site(a);
        let m = ElectricalMasking::new(0.5);
        // arrivals are 1.0 at depth 1 and depth 3:
        // P_eff = 1 - (1 - 0.5)(1 - 0.125) = 0.5625.
        let derated = m.derate(&c, &site);
        assert!((derated - 0.5625).abs() < 1e-12, "derated = {derated}");
    }
}
