//! Selective hardening — the conclusion's motivating use-case:
//! "identify the most vulnerable components to be protected by soft
//! error hardening techniques."
//!
//! Hardening a node (gate resizing, duplication, SEU-tolerant cells)
//! suppresses its *own* upsets; its cost is modelled per node. Given a
//! budget, pick the set of nodes maximizing removed SER — with one cost
//! per node this is the classic greedy knapsack-by-ratio, optimal here
//! because protecting a node removes exactly its own contribution.

use ser_netlist::{Circuit, NodeId};

use crate::ser_model::SerReport;

/// Cost model for hardening a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HardeningCost {
    /// Every node costs the same (budget = node count).
    Unit,
    /// Cost proportional to fanin count + 1 (area proxy: bigger gates
    /// cost more to duplicate or resize).
    AreaProxy,
}

impl HardeningCost {
    /// Cost of hardening `node`.
    #[must_use]
    pub fn cost(&self, circuit: &Circuit, node: NodeId) -> f64 {
        match self {
            HardeningCost::Unit => 1.0,
            HardeningCost::AreaProxy => 1.0 + circuit.node(node).fanin().len() as f64,
        }
    }
}

/// One selected node with its cost and removed SER.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningChoice {
    /// The protected node.
    pub node: NodeId,
    /// Its hardening cost.
    pub cost: f64,
    /// SER contribution removed by protecting it.
    pub removed_ser: f64,
}

/// A hardening plan: the chosen nodes plus summary numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct HardeningPlan {
    choices: Vec<HardeningChoice>,
    spent: f64,
    removed: f64,
    original_total: f64,
}

impl HardeningPlan {
    /// Greedy plan: protect nodes in descending `removed / cost` until
    /// the budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    #[must_use]
    pub fn greedy(
        circuit: &Circuit,
        report: &SerReport,
        cost_model: HardeningCost,
        budget: f64,
    ) -> Self {
        assert!(budget.is_finite() && budget >= 0.0, "budget must be >= 0");
        let mut candidates: Vec<HardeningChoice> = report
            .entries()
            .iter()
            .filter(|e| e.ser > 0.0)
            .map(|e| HardeningChoice {
                node: e.node,
                cost: cost_model.cost(circuit, e.node),
                removed_ser: e.ser,
            })
            .collect();
        candidates.sort_by(|a, b| {
            let ra = a.removed_ser / a.cost;
            let rb = b.removed_ser / b.cost;
            rb.partial_cmp(&ra)
                .expect("finite ratios")
                .then(a.node.cmp(&b.node))
        });
        let mut spent = 0.0;
        let mut removed = 0.0;
        let mut choices = Vec::new();
        for c in candidates {
            if spent + c.cost > budget {
                continue; // try cheaper later candidates (greedy knapsack)
            }
            spent += c.cost;
            removed += c.removed_ser;
            choices.push(c);
        }
        HardeningPlan {
            choices,
            spent,
            removed,
            original_total: report.total(),
        }
    }

    /// The chosen nodes, in selection (descending benefit/cost) order.
    #[must_use]
    pub fn choices(&self) -> &[HardeningChoice] {
        &self.choices
    }

    /// Budget actually spent.
    #[must_use]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Total SER removed.
    #[must_use]
    pub fn removed_ser(&self) -> f64 {
        self.removed
    }

    /// SER remaining after hardening.
    #[must_use]
    pub fn remaining_ser(&self) -> f64 {
        (self.original_total - self.removed).max(0.0)
    }

    /// Fraction of the original SER removed (0 if the circuit had none).
    #[must_use]
    pub fn reduction_fraction(&self) -> f64 {
        if self.original_total == 0.0 {
            0.0
        } else {
            self.removed / self.original_total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser_model::{PlatchedModel, RseuModel};
    use ser_netlist::parse_bench;

    fn report_for(circuit: &Circuit, ps: &[f64]) -> SerReport {
        SerReport::assemble(
            circuit,
            ps,
            &RseuModel::default(),
            &PlatchedModel::default(),
        )
    }

    #[test]
    fn greedy_picks_best_ratio_first() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, b)\n",
            "t",
        )
        .unwrap();
        // a: 0.4, b: 0.9, u: 0.5, y: 1.0 (unit costs).
        let ps = vec![0.4, 0.9, 0.5, 1.0];
        let report = report_for(&c, &ps);
        let plan = HardeningPlan::greedy(&c, &report, HardeningCost::Unit, 2.0);
        assert_eq!(plan.choices().len(), 2);
        assert_eq!(c.node(plan.choices()[0].node).name(), "y");
        assert_eq!(c.node(plan.choices()[1].node).name(), "b");
        assert!((plan.removed_ser() - 1.9).abs() < 1e-12);
        assert!((plan.remaining_ser() - 0.9).abs() < 1e-12);
        assert!((plan.reduction_fraction() - 1.9 / 2.8).abs() < 1e-12);
        assert_eq!(plan.spent(), 2.0);
    }

    #[test]
    fn area_proxy_changes_ranking() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nu = AND(a, b, d)\ny = OR(u, b)\n",
            "t",
        )
        .unwrap();
        // u (3 fanins, cost 4) has SER 1.0; input a (cost 1) has 0.5.
        let ps: Vec<f64> = c
            .node_ids()
            .map(|id| match c.node(id).name() {
                "u" => 1.0,
                "a" => 0.5,
                _ => 0.0,
            })
            .collect();
        let report = report_for(&c, &ps);
        // Budget 1: only `a` fits (u costs 4).
        let plan = HardeningPlan::greedy(&c, &report, HardeningCost::AreaProxy, 1.0);
        assert_eq!(plan.choices().len(), 1);
        assert_eq!(c.node(plan.choices()[0].node).name(), "a");
        // Budget 5: ratio order is a (0.5/1) > u (1/4), both fit.
        let plan = HardeningPlan::greedy(&c, &report, HardeningCost::AreaProxy, 5.0);
        assert_eq!(plan.choices().len(), 2);
    }

    #[test]
    fn zero_budget_zero_plan() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let report = report_for(&c, &[1.0, 1.0]);
        let plan = HardeningPlan::greedy(&c, &report, HardeningCost::Unit, 0.0);
        assert!(plan.choices().is_empty());
        assert_eq!(plan.removed_ser(), 0.0);
        assert_eq!(plan.remaining_ser(), report.total());
    }

    #[test]
    fn zero_ser_nodes_skipped() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "t").unwrap();
        // u is unobservable: SER 0 — must not be selected even with
        // infinite budget.
        let ps: Vec<f64> = c
            .node_ids()
            .map(|id| if c.node(id).name() == "u" { 0.0 } else { 1.0 })
            .collect();
        let report = report_for(&c, &ps);
        let plan = HardeningPlan::greedy(&c, &report, HardeningCost::Unit, 100.0);
        assert!(plan
            .choices()
            .iter()
            .all(|ch| c.node(ch.node).name() != "u"));
        assert!((plan.reduction_fraction() - 1.0).abs() < 1e-12);
    }
}
