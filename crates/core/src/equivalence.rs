//! Combinational equivalence checking via BDDs.
//!
//! The hardening transforms must not change circuit function; this
//! module proves it (or produces a counterexample) by building both
//! circuits' output functions over a shared variable space and
//! comparing canonical BDDs. Inputs and outputs are matched *by name* —
//! the invariant [`harden_tmr`](ser_netlist::harden_tmr) maintains.
//! Flip-flop Q outputs are treated as free pseudo-inputs (also matched
//! by name), so two sequential circuits are compared cycle-for-cycle.

use std::collections::HashMap;

use ser_netlist::{Circuit, GateKind, NodeId};
use ser_sp::bdd::{Bdd, BddOverflow, BddRef};
use ser_sp::SpError;

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All matched outputs compute identical functions.
    Equivalent,
    /// Some output differs; a satisfying input assignment is included.
    Inequivalent {
        /// Name of the first differing output.
        output: String,
        /// A concrete input assignment (by source name) exposing the
        /// difference; sources not listed are "don't care" (take 0).
        witness: Vec<(String, bool)>,
    },
    /// The circuits' interfaces do not line up.
    InterfaceMismatch {
        /// Human-readable reason.
        reason: String,
    },
}

/// Checks combinational equivalence of two circuits with matching
/// source and output names.
///
/// # Errors
///
/// [`SpError::CircuitTooLarge`] if the BDDs exceed `node_limit`;
/// [`SpError::Netlist`] if a circuit cannot be ordered.
///
/// # Examples
///
/// ```
/// use ser_netlist::{harden_tmr, parse_bench};
/// use ser_epp::{check_equivalence, Equivalence};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t")?;
/// let y = c.find("y").unwrap();
/// let hardened = harden_tmr(&c, &[y])?;
/// assert_eq!(check_equivalence(&c, &hardened, 1 << 20)?, Equivalence::Equivalent);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_equivalence(
    left: &Circuit,
    right: &Circuit,
    node_limit: usize,
) -> Result<Equivalence, SpError> {
    // --- Interface matching by name. -----------------------------------
    let source_names = |c: &Circuit| -> Vec<String> {
        c.inputs()
            .iter()
            .chain(c.dffs().iter())
            .map(|&id| c.node(id).name().to_owned())
            .collect()
    };
    let mut lsrc = source_names(left);
    let mut rsrc = source_names(right);
    lsrc.sort();
    rsrc.sort();
    if lsrc != rsrc {
        return Ok(Equivalence::InterfaceMismatch {
            reason: format!("source sets differ: {lsrc:?} vs {rsrc:?}"),
        });
    }
    let lout: Vec<&str> = left
        .outputs()
        .iter()
        .map(|&o| left.node(o).name())
        .collect();
    let rout: Vec<&str> = right
        .outputs()
        .iter()
        .map(|&o| right.node(o).name())
        .collect();
    if lout.len() != rout.len() || {
        let mut a = lout.clone();
        let mut b = rout.clone();
        a.sort_unstable();
        b.sort_unstable();
        a != b
    } {
        return Ok(Equivalence::InterfaceMismatch {
            reason: format!("output sets differ: {lout:?} vs {rout:?}"),
        });
    }

    // --- Shared variable space. ----------------------------------------
    let var_index: HashMap<&str, usize> = lsrc
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut m = Bdd::new(var_index.len(), node_limit);
    let overflow = |_: BddOverflow| SpError::CircuitTooLarge {
        nodes: node_limit,
        limit: node_limit,
    };

    let lfuncs = build_functions(&mut m, left, &var_index).map_err(overflow)?;
    let rfuncs = build_functions(&mut m, right, &var_index).map_err(overflow)?;

    // --- Compare outputs by name. ---------------------------------------
    for &lo in left.outputs() {
        let name = left.node(lo).name();
        let ro = right.find(name).expect("output names matched above");
        let lf = lfuncs[lo.index()];
        let rf = rfuncs[ro.index()];
        if lf != rf {
            // Canonicity makes difference a handle comparison; extract a
            // witness from the XOR.
            let diff = m.xor(lf, rf).map_err(overflow)?;
            let assignment = satisfying_assignment(&m, diff);
            let witness = assignment
                .into_iter()
                .map(|(v, b)| (lsrc[v].clone(), b))
                .collect();
            return Ok(Equivalence::Inequivalent {
                output: name.to_owned(),
                witness,
            });
        }
    }
    Ok(Equivalence::Equivalent)
}

/// Builds per-node BDDs for `circuit` using a shared manager whose
/// variables are indexed by source *name*.
fn build_functions(
    m: &mut Bdd,
    circuit: &Circuit,
    var_index: &HashMap<&str, usize>,
) -> Result<Vec<BddRef>, BddOverflow> {
    let order = ser_netlist::topo_order(circuit).expect("caller validated");
    let mut funcs = vec![BddRef::FALSE; circuit.len()];
    for id in order {
        let node = circuit.node(id);
        let fold = |m: &mut Bdd,
                    funcs: &[BddRef],
                    op: fn(&mut Bdd, BddRef, BddRef) -> Result<BddRef, BddOverflow>|
         -> Result<BddRef, BddOverflow> {
            let mut acc = funcs[node.fanin()[0].index()];
            for f in &node.fanin()[1..] {
                acc = op(m, acc, funcs[f.index()])?;
            }
            Ok(acc)
        };
        let f = match node.kind() {
            GateKind::Input | GateKind::Dff => m.var(var_index[node.name()])?,
            GateKind::Const0 => BddRef::FALSE,
            GateKind::Const1 => BddRef::TRUE,
            GateKind::Buf => funcs[node.fanin()[0].index()],
            GateKind::Not => m.not(funcs[node.fanin()[0].index()])?,
            GateKind::And => fold(m, &funcs, Bdd::and)?,
            GateKind::Nand => {
                let x = fold(m, &funcs, Bdd::and)?;
                m.not(x)?
            }
            GateKind::Or => fold(m, &funcs, Bdd::or)?,
            GateKind::Nor => {
                let x = fold(m, &funcs, Bdd::or)?;
                m.not(x)?
            }
            GateKind::Xor => fold(m, &funcs, Bdd::xor)?,
            GateKind::Xnor => {
                let x = fold(m, &funcs, Bdd::xor)?;
                m.not(x)?
            }
        };
        funcs[id.index()] = f;
    }
    Ok(funcs)
}

/// Any satisfying assignment of a non-FALSE function: walk toward TRUE.
fn satisfying_assignment(m: &Bdd, f: BddRef) -> Vec<(usize, bool)> {
    let mut path = Vec::new();
    m.walk_to_true(f, &mut path);
    path
}

/// The nodes TMR'd by [`harden_tmr`](ser_netlist::harden_tmr) keep
/// their pre-transform ids only in the original circuit; this helper
/// maps a hardening plan's node choices to the replica names whose SER
/// vanishes after the transform.
#[must_use]
pub fn tmr_replica_names(circuit: &Circuit, node: NodeId) -> [String; 3] {
    let name = circuit.node(node).name();
    [
        format!("{name}__r0"),
        format!("{name}__r1"),
        format!("{name}__r2"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{harden_tmr, parse_bench};

    #[test]
    fn identical_circuits_equivalent() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "t").unwrap();
        assert_eq!(
            check_equivalence(&c, &c, 1 << 16).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn structurally_different_but_equal() {
        // XOR vs its NAND decomposition.
        let a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x").unwrap();
        let b = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\nv = NAND(a, u)\nw = NAND(b, u)\ny = NAND(v, w)\n",
            "nx",
        )
        .unwrap();
        assert_eq!(
            check_equivalence(&a, &b, 1 << 16).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn inequivalent_with_witness() {
        let a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and").unwrap();
        let b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "or").unwrap();
        match check_equivalence(&a, &b, 1 << 16).unwrap() {
            Equivalence::Inequivalent { output, witness } => {
                assert_eq!(output, "y");
                // Verify the witness actually differs: AND != OR exactly
                // when exactly one input is 1.
                let ones = witness.iter().filter(|(_, v)| *v).count();
                assert_eq!(ones, 1, "witness {witness:?}");
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_detected() {
        let a = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let b = parse_bench("INPUT(x)\nOUTPUT(y)\ny = NOT(x)\n", "t").unwrap();
        assert!(matches!(
            check_equivalence(&a, &b, 1 << 16).unwrap(),
            Equivalence::InterfaceMismatch { .. }
        ));
    }

    #[test]
    fn tmr_preserves_function_formally() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\nu = NAND(a, b)\nv = XOR(u, c)\ny = OR(v, a)\nz = AND(u, v)\n",
            "f",
        )
        .unwrap();
        let targets: Vec<_> = ["u", "v", "y"].iter().map(|n| c.find(n).unwrap()).collect();
        let h = harden_tmr(&c, &targets).unwrap();
        assert_eq!(
            check_equivalence(&c, &h, 1 << 18).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn sequential_compared_cycle_for_cycle() {
        // Same next-state/output logic expressed differently.
        let a = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nd = NOT(x)\ny = AND(q, x)\n",
            "s1",
        )
        .unwrap();
        let b = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nnx = NOT(x)\nd = BUF(nx)\ny = AND(x, q)\n",
            "s2",
        )
        .unwrap();
        assert_eq!(
            check_equivalence(&a, &b, 1 << 16).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn replica_names_helper() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let y = c.find("y").unwrap();
        let names = tmr_replica_names(&c, y);
        assert_eq!(names[0], "y__r0");
        assert_eq!(names[2], "y__r2");
    }
}
