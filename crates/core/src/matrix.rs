//! The site × observe-point vulnerability matrix.
//!
//! `P_sensitized` collapses each site's exposure to one number; the
//! matrix underneath it — *which* outputs see *which* sites, at what
//! arrival probability — is what placement-aware hardening and error
//! containment actually need (e.g. "protect everything visible from
//! the bus parity output"). The EPP pass computes the full matrix for
//! free; this module materializes it.

use std::fmt::Write as _;

use ser_netlist::{Circuit, NodeId, ObservePoint};

use crate::engine::{EppAnalysis, WorkspacePool};

/// Dense site × observe-point arrival matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnerabilityMatrix {
    points: Vec<ObservePoint>,
    /// Row-major `[site][point]` arrival probabilities (`Pa + Pā`).
    arrivals: Vec<f64>,
    sites: usize,
}

impl VulnerabilityMatrix {
    /// Computes the matrix for every node of the analysis' circuit, in
    /// one batched sweep over the shared cone plans.
    #[must_use]
    pub fn compute(analysis: &EppAnalysis) -> Self {
        let circuit = analysis.circuit();
        let points: Vec<ObservePoint> = circuit.observe_points().collect();
        let cols = points.len();
        let mut arrivals = vec![0.0f64; circuit.len() * cols];
        let pool = WorkspacePool::new();
        let sweep = analysis.sweep(1, &pool);
        for result in sweep.iter() {
            let site = result.site();
            for p in result.per_point() {
                let col = points
                    .iter()
                    .position(|&q| q == p.point)
                    .expect("point enumerated");
                arrivals[site.index() * cols + col] = p.p_arrival();
            }
        }
        VulnerabilityMatrix {
            points,
            arrivals,
            sites: circuit.len(),
        }
    }

    /// The observe points (column order).
    #[must_use]
    pub fn points(&self) -> &[ObservePoint] {
        &self.points
    }

    /// Arrival probability from `site` to column `point_index`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn arrival(&self, site: NodeId, point_index: usize) -> f64 {
        assert!(point_index < self.points.len(), "column out of range");
        self.arrivals[site.index() * self.points.len() + point_index]
    }

    /// All arrivals from one site (a row).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn row(&self, site: NodeId) -> &[f64] {
        let cols = self.points.len();
        &self.arrivals[site.index() * cols..(site.index() + 1) * cols]
    }

    /// Number of sites (rows).
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.sites
    }

    /// The sites visible from one observe point above a threshold —
    /// the "error containment region" of that output.
    #[must_use]
    pub fn visible_sites(&self, point_index: usize, threshold: f64) -> Vec<NodeId> {
        (0..self.sites)
            .map(NodeId::from_index)
            .filter(|&s| self.arrival(s, point_index) > threshold)
            .collect()
    }

    /// Renders the matrix as CSV: header of observe-point signal names,
    /// one row per site.
    #[must_use]
    pub fn to_csv(&self, circuit: &Circuit) -> String {
        let mut out = String::from("site");
        for p in &self.points {
            let tag = if p.is_flip_flop() { "ff" } else { "po" };
            let _ = write!(out, ",{}:{}", tag, circuit.node(p.signal()).name());
        }
        out.push('\n');
        for site in circuit.node_ids() {
            let _ = write!(out, "{}", circuit.node(site).name());
            for v in self.row(site) {
                let _ = write!(out, ",{v:.6}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn matrix_for(src: &str) -> (ser_netlist::Circuit, VulnerabilityMatrix) {
        let c = parse_bench(src, "m").unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let m = VulnerabilityMatrix::compute(&analysis);
        (c, m)
    }

    #[test]
    fn fan_shaped_visibility() {
        // y1 sees a (gated by b); y2 sees c (gated by b); b sees both.
        let (c, m) = matrix_for(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = AND(c, b)\n",
        );
        assert_eq!(m.points().len(), 2);
        assert_eq!(m.num_sites(), c.len());
        let a = c.find("a").unwrap();
        let b = c.find("b").unwrap();
        let cc = c.find("c").unwrap();
        // Column order matches circuit.observe_points(): y1 then y2.
        assert!((m.arrival(a, 0) - 0.5).abs() < 1e-12);
        assert_eq!(m.arrival(a, 1), 0.0);
        assert_eq!(m.arrival(cc, 0), 0.0);
        assert!((m.arrival(cc, 1) - 0.5).abs() < 1e-12);
        assert!((m.arrival(b, 0) - 0.5).abs() < 1e-12);
        assert!((m.arrival(b, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn visible_sites_threshold() {
        let (c, m) = matrix_for(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = AND(c, b)\n",
        );
        let vis = m.visible_sites(0, 0.1);
        let names: Vec<&str> = vis.iter().map(|&s| c.node(s).name()).collect();
        assert!(names.contains(&"a"));
        assert!(names.contains(&"b"));
        assert!(names.contains(&"y1"));
        assert!(!names.contains(&"c"));
        assert!(!names.contains(&"y2"));
    }

    #[test]
    fn csv_shape() {
        let (c, m) = matrix_for("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        let csv = m.to_csv(&c);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + c.len());
        assert_eq!(lines[0], "site,po:y");
        assert!(lines[1].starts_with("a,1.000000"));
    }

    #[test]
    fn flip_flop_columns_tagged() {
        let (c, m) = matrix_for("INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = NOT(a)\ny = NOT(q)\n");
        let csv = m.to_csv(&c);
        assert!(csv.lines().next().unwrap().contains("ff:d"));
        assert!(csv.lines().next().unwrap().contains("po:y"));
    }

    #[test]
    fn row_slices_match_point_lookup() {
        let (c, m) = matrix_for(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = OR(a, b)\ny2 = NAND(a, b)\n",
        );
        for site in c.node_ids() {
            let row = m.row(site);
            for (i, &v) in row.iter().enumerate() {
                assert_eq!(v, m.arrival(site, i));
            }
        }
    }
}
