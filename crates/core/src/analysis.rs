//! Whole-circuit SER analysis: the user-facing facade tying together
//! signal probabilities, the per-site EPP pass, the SER model and
//! timing measurement (the quantities Table 2 reports).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ser_netlist::{Circuit, NetlistError, NodeId};
use ser_sp::{InputProbs, SpEngine, SpError, SpVector};

use crate::ser_model::{PlatchedModel, RseuModel, SerReport};
use crate::session::AnalysisSession;
use crate::sweep::{SweepResults, SweepSiteRef};

/// Configuration for a whole-circuit analysis run.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_epp::CircuitSerAnalysis;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let outcome = CircuitSerAnalysis::new().run(&c)?;
/// let y = c.find("y").unwrap();
/// assert_eq!(outcome.p_sensitized()[y.index()], 1.0);
/// assert!(outcome.epp_time() > std::time::Duration::ZERO);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitSerAnalysis {
    inputs: InputProbs,
    rseu: RseuModel,
    platched: PlatchedModel,
    threads: usize,
}

impl CircuitSerAnalysis {
    /// Default analysis: uniform 0.5 inputs, unit `R_SEU`, certain
    /// `P_latched`, single-threaded.
    #[must_use]
    pub fn new() -> Self {
        CircuitSerAnalysis {
            inputs: InputProbs::default(),
            rseu: RseuModel::default(),
            platched: PlatchedModel::default(),
            threads: 1,
        }
    }

    /// Sets the primary-input probability distribution.
    #[must_use]
    pub fn with_inputs(mut self, inputs: InputProbs) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the raw upset-rate model.
    #[must_use]
    pub fn with_rseu(mut self, rseu: RseuModel) -> Self {
        self.rseu = rseu;
        self
    }

    /// Sets the latching model.
    #[must_use]
    pub fn with_platched(mut self, platched: PlatchedModel) -> Self {
        self.platched = platched;
        self
    }

    /// Sets the number of worker threads for the per-site sweep.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread");
        self.threads = threads;
        self
    }

    /// Runs the analysis with the default (independent, linear-time)
    /// signal-probability engine. Compiles a one-shot
    /// [`AnalysisSession`]; callers doing more than one thing with the
    /// same circuit should build the session themselves and use
    /// [`run_with_session`](Self::run_with_session).
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] if signal probabilities cannot be computed or
    /// the circuit is structurally invalid.
    pub fn run(&self, circuit: impl Into<Arc<Circuit>>) -> Result<AnalysisOutcome, SpError> {
        let session = AnalysisSession::with_inputs(circuit, self.inputs.clone())?;
        Ok(self.run_with_session(&session))
    }

    /// Runs the analysis with a caller-chosen SP engine (the SP-engine
    /// ablation entry point).
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] from the SP engine, or a wrapped
    /// [`NetlistError`] if the circuit cannot be ordered.
    pub fn run_with_sp_engine(
        &self,
        circuit: impl Into<Arc<Circuit>>,
        engine: &dyn SpEngine,
    ) -> Result<AnalysisOutcome, SpError> {
        let session = AnalysisSession::with_engine(circuit, self.inputs.clone(), engine)?;
        Ok(self.run_with_session(&session))
    }

    /// Runs the analysis with precomputed signal probabilities
    /// (`sp_time` is carried into the outcome so Table 2's ISP/ESP
    /// split stays honest when SP comes from elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic circuits.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not cover exactly `circuit.len()` nodes.
    pub fn run_with_sp(
        &self,
        circuit: impl Into<Arc<Circuit>>,
        sp: SpVector,
        sp_time: Duration,
    ) -> Result<AnalysisOutcome, NetlistError> {
        let session = AnalysisSession::from_sp(circuit, self.inputs.clone(), sp, sp_time).map_err(
            |e| match e {
                SpError::Netlist(n) => n,
                other => unreachable!("from_sp only fails structurally: {other}"),
            },
        )?;
        Ok(self.run_with_session(&session))
    }

    /// The core sweep over a compiled [`AnalysisSession`]: every
    /// per-circuit artifact (topological order, observe points, signal
    /// probabilities, scratch workspaces) comes from the session; this
    /// method only runs the per-site EPP passes and assembles the
    /// report. Running it twice on the same session recomputes nothing
    /// but the passes themselves.
    ///
    /// Note the sweep uses the session's signal probabilities — the
    /// builder's [`with_inputs`](Self::with_inputs) configuration
    /// applies only to entry points that compile the session
    /// themselves.
    #[must_use]
    pub fn run_with_session(&self, session: &AnalysisSession) -> AnalysisOutcome {
        let epp_start = Instant::now();
        let sweep = session.sweep(self.threads);
        let epp_time = epp_start.elapsed();
        let report = SerReport::assemble(
            session.circuit(),
            sweep.p_sensitized(),
            &self.rseu,
            &self.platched,
        );
        AnalysisOutcome {
            sweep,
            report,
            sp_time: session.sp_time(),
            epp_time,
        }
    }
}

impl Default for CircuitSerAnalysis {
    fn default() -> Self {
        CircuitSerAnalysis::new()
    }
}

/// Everything a whole-circuit analysis produces. Per-site results live
/// in one flat [`SweepResults`] arena; [`site`](Self::site) hands out
/// borrowed views.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    sweep: SweepResults,
    report: SerReport,
    sp_time: Duration,
    epp_time: Duration,
}

impl AnalysisOutcome {
    /// The sweep arena holding every per-site result, in arena order.
    #[must_use]
    pub fn sweep(&self) -> &SweepResults {
        &self.sweep
    }

    /// Number of sites analyzed (every node of the circuit).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// `true` only for an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// Per-node `P_sensitized`, in arena order.
    #[must_use]
    pub fn p_sensitized(&self) -> Vec<f64> {
        self.sweep.p_sensitized().to_vec()
    }

    /// The SER report (per-node entries, total, rankings).
    #[must_use]
    pub fn report(&self) -> &SerReport {
        &self.report
    }

    /// Time spent computing signal probabilities (Table 2's `SPT`).
    #[must_use]
    pub fn sp_time(&self) -> Duration {
        self.sp_time
    }

    /// Time spent in the per-site EPP sweep (Table 2's `SysT`).
    #[must_use]
    pub fn epp_time(&self) -> Duration {
        self.epp_time
    }

    /// Worker threads the sweep scheduler actually used (may be fewer
    /// than requested: small circuits run single-threaded below
    /// [`SINGLE_THREAD_SWEEP_THRESHOLD`](crate::SINGLE_THREAD_SWEEP_THRESHOLD)).
    #[must_use]
    pub fn threads_used(&self) -> usize {
        self.sweep.threads_used()
    }

    /// The site result for one node (a borrowed view into the arena).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn site(&self, node: NodeId) -> SweepSiteRef<'_> {
        self.sweep.site(node)
    }

    /// Per-node `P_sensitized` derated by an electrical-masking model
    /// (see [`ElectricalMasking`](crate::ElectricalMasking)): pulse
    /// attenuation shrinks deep-path arrivals.
    #[must_use]
    pub fn derated_p_sensitized(
        &self,
        circuit: &Circuit,
        masking: crate::ElectricalMasking,
    ) -> Vec<f64> {
        self.sweep
            .iter()
            .map(|s| masking.derate(circuit, &s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::MonteCarloSp;

    fn toy() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "toy",
        )
        .unwrap()
    }

    #[test]
    fn default_run_produces_consistent_outcome() {
        let c = toy();
        let out = CircuitSerAnalysis::new().run(&c).unwrap();
        assert_eq!(out.len(), c.len());
        assert_eq!(out.p_sensitized().len(), c.len());
        assert_eq!(out.threads_used(), 1, "tiny circuit: one worker");
        // Output node: always sensitized.
        let y = c.find("y").unwrap();
        assert_eq!(out.site(y).p_sensitized(), 1.0);
        // u = AND(a,b) reaches y through OR gated by c (SP .5): 0.5.
        let u = c.find("u").unwrap();
        assert!((out.site(u).p_sensitized() - 0.5).abs() < 1e-12);
        // Total SER with unit models = sum of P_sens.
        let sum: f64 = out.p_sensitized().iter().sum();
        assert!((out.report().total() - sum).abs() < 1e-9);
    }

    #[test]
    fn threads_do_not_change_results() {
        let c = toy();
        let seq = CircuitSerAnalysis::new().run(&c).unwrap();
        let par = CircuitSerAnalysis::new().with_threads(4).run(&c).unwrap();
        assert_eq!(seq.p_sensitized(), par.p_sensitized());
    }

    #[test]
    fn alternate_sp_engine() {
        let c = toy();
        let out = CircuitSerAnalysis::new()
            .run_with_sp_engine(&c, &MonteCarloSp::new(50_000).with_seed(3))
            .unwrap();
        let u = c.find("u").unwrap();
        assert!((out.site(u).p_sensitized() - 0.5).abs() < 0.02);
    }

    #[test]
    fn models_scale_report() {
        let c = toy();
        let out = CircuitSerAnalysis::new()
            .with_rseu(RseuModel::Uniform(10.0))
            .with_platched(PlatchedModel::Constant(0.1))
            .run(&c)
            .unwrap();
        let sum: f64 = out.p_sensitized().iter().sum();
        assert!((out.report().total() - sum).abs() < 1e-9);
    }

    #[test]
    fn derated_sensitization_never_exceeds_logical() {
        let c = toy();
        let out = CircuitSerAnalysis::new().run(&c).unwrap();
        let logical = out.p_sensitized();
        let derated = out.derated_p_sensitized(&c, crate::ElectricalMasking::new(0.8));
        for (i, (l, d)) in logical.iter().zip(&derated).enumerate() {
            assert!(d <= l, "node {i}: derated {d} > logical {l}");
        }
        // alpha = 1 is the identity.
        let same = out.derated_p_sensitized(&c, crate::ElectricalMasking::none());
        assert_eq!(same, logical);
    }

    #[test]
    fn timings_are_recorded() {
        let c = toy();
        let out = CircuitSerAnalysis::new().run(&c).unwrap();
        assert!(out.epp_time() > Duration::ZERO);
        // sp_time may be arbitrarily small but is recorded.
        let _ = out.sp_time();
    }
}
