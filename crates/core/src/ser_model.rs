//! The full SER model:
//! `SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n)`.
//!
//! The paper evaluates only the `P_sensitized` term (the expensive one)
//! and treats the other two as technology inputs; this module provides
//! the standard parameterizations so whole-circuit SER reports, node
//! rankings and hardening decisions can be produced.

use std::collections::BTreeMap;
use std::fmt;

use ser_netlist::{Circuit, GateKind, NodeId};

use crate::sweep::EppSiteView;

/// The raw SEU (bit-flip) rate of a node — "depends on the particle
/// flux, the energy of the particle, type and size of the gate, and the
/// device characteristics". Rates are in FIT-like arbitrary units; only
/// ratios matter to the rankings.
#[derive(Debug, Clone, PartialEq)]
pub enum RseuModel {
    /// Every node upsets at the same rate.
    Uniform(f64),
    /// Per-gate-kind rates (larger gates collect more charge); kinds
    /// missing from the table fall back to the default.
    PerKind {
        /// Rate per gate kind.
        rates: BTreeMap<GateKind, f64>,
        /// Fallback rate.
        default: f64,
    },
    /// Rate proportional to fanin count (a crude area proxy):
    /// `base × (1 + slope × fanin)`.
    FaninScaled {
        /// Rate of a zero-fanin node.
        base: f64,
        /// Additional rate per fanin pin.
        slope: f64,
    },
}

impl RseuModel {
    /// The upset rate of `node` in `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn rate(&self, circuit: &Circuit, node: NodeId) -> f64 {
        match self {
            RseuModel::Uniform(r) => *r,
            RseuModel::PerKind { rates, default } => rates
                .get(&circuit.node(node).kind())
                .copied()
                .unwrap_or(*default),
            RseuModel::FaninScaled { base, slope } => {
                base * (1.0 + slope * circuit.node(node).fanin().len() as f64)
            }
        }
    }
}

impl Default for RseuModel {
    /// Uniform unit rate (rankings then reflect `P_latched × P_sens`).
    fn default() -> Self {
        RseuModel::Uniform(1.0)
    }
}

/// The probability that an erroneous value which reached a storage
/// element is actually captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlatchedModel {
    /// A constant capture probability.
    Constant(f64),
    /// The classic latching-window model: a transient of width `w` is
    /// captured by a clock of period `T` with window `(w + ts + th) / T`
    /// (clamped to 1), where `ts`/`th` are setup/hold times. All times
    /// in the same unit.
    LatchingWindow {
        /// Transient pulse width.
        pulse_width: f64,
        /// Flip-flop setup time.
        setup: f64,
        /// Flip-flop hold time.
        hold: f64,
        /// Clock period.
        clock_period: f64,
    },
}

impl PlatchedModel {
    /// The capture probability.
    ///
    /// # Panics
    ///
    /// Panics if a [`PlatchedModel::Constant`] probability is outside
    /// `[0, 1]` or a window parameter is non-positive where required.
    #[must_use]
    pub fn probability(&self) -> f64 {
        match *self {
            PlatchedModel::Constant(p) => {
                assert!((0.0..=1.0).contains(&p), "P_latched = {p} outside [0,1]");
                p
            }
            PlatchedModel::LatchingWindow {
                pulse_width,
                setup,
                hold,
                clock_period,
            } => {
                assert!(clock_period > 0.0, "clock period must be positive");
                assert!(
                    pulse_width >= 0.0 && setup >= 0.0 && hold >= 0.0,
                    "window parameters must be non-negative"
                );
                ((pulse_width + setup + hold) / clock_period).min(1.0)
            }
        }
    }
}

impl Default for PlatchedModel {
    /// Certain capture (rankings then reflect `R_SEU × P_sens`).
    fn default() -> Self {
        PlatchedModel::Constant(1.0)
    }
}

/// Per-node SER estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerEntry {
    /// The node.
    pub node: NodeId,
    /// Raw upset rate `R_SEU`.
    pub rseu: f64,
    /// Capture probability `P_latched`.
    pub platched: f64,
    /// Propagation probability `P_sensitized`.
    pub p_sensitized: f64,
    /// The product — this node's SER contribution.
    pub ser: f64,
}

/// Whole-circuit SER report: per-node entries plus the total.
#[derive(Debug, Clone, PartialEq)]
pub struct SerReport {
    entries: Vec<SerEntry>,
    total: f64,
}

impl SerReport {
    /// Assembles a report from per-node `P_sensitized` values and the
    /// two technology models.
    ///
    /// # Panics
    ///
    /// Panics if `p_sensitized.len() != circuit.len()`.
    #[must_use]
    pub fn assemble(
        circuit: &Circuit,
        p_sensitized: &[f64],
        rseu: &RseuModel,
        platched: &PlatchedModel,
    ) -> Self {
        assert_eq!(
            p_sensitized.len(),
            circuit.len(),
            "one P_sensitized per node"
        );
        let pl = platched.probability();
        let entries: Vec<SerEntry> = circuit
            .node_ids()
            .map(|node| {
                let r = rseu.rate(circuit, node);
                let ps = p_sensitized[node.index()];
                SerEntry {
                    node,
                    rseu: r,
                    platched: pl,
                    p_sensitized: ps,
                    ser: r * pl * ps,
                }
            })
            .collect();
        let total = entries.iter().map(|e| e.ser).sum();
        SerReport { entries, total }
    }

    /// Like [`assemble`](Self::assemble) but with *split observation
    /// semantics*: a primary-output arrival always counts as a failure,
    /// while a flip-flop arrival is discounted by `P_latched` (the
    /// latching-window capture probability). This refines the paper's
    /// per-site multiplicative model using the per-point tuples the EPP
    /// pass already produces:
    ///
    /// ```text
    /// P_fail(n) = 1 − Π_PO (1 − arr_j) · Π_FF (1 − P_latched · arr_k)
    /// SER(n)    = R_SEU(n) × P_fail(n)
    /// ```
    ///
    /// The reported `p_sensitized` stays the undiscounted combination so
    /// the entry remains comparable with [`assemble`](Self::assemble);
    /// `platched` records the model's capture probability.
    ///
    /// Accepts any sequence of per-site result views in arena order —
    /// owned [`SiteEpp`](crate::SiteEpp)s (`&sites`) or a batched
    /// sweep's arena (`sweep.iter()`).
    ///
    /// # Panics
    ///
    /// Panics if `sites` does not yield exactly one result per circuit
    /// node, in arena order.
    #[must_use]
    pub fn assemble_split<I>(
        circuit: &Circuit,
        sites: I,
        rseu: &RseuModel,
        platched: &PlatchedModel,
    ) -> Self
    where
        I: IntoIterator,
        I::Item: EppSiteView,
    {
        let mut sites = sites.into_iter();
        let pl = platched.probability();
        let entries: Vec<SerEntry> = circuit
            .node_ids()
            .map(|node| {
                let site = sites.next().expect("one site result per node");
                assert_eq!(site.site(), node, "site results must be in arena order");
                let miss: f64 = site
                    .per_point()
                    .iter()
                    .map(|p| {
                        let arr = p.p_arrival();
                        if p.point.is_flip_flop() {
                            1.0 - pl * arr
                        } else {
                            1.0 - arr
                        }
                    })
                    .map(|m| m.clamp(0.0, 1.0))
                    .product();
                let p_fail = (1.0 - miss).clamp(0.0, 1.0);
                let r = rseu.rate(circuit, node);
                SerEntry {
                    node,
                    rseu: r,
                    platched: pl,
                    p_sensitized: site.p_sensitized(),
                    ser: r * p_fail,
                }
            })
            .collect();
        assert!(
            sites.next().is_none(),
            "more site results than circuit nodes"
        );
        let total = entries.iter().map(|e| e.ser).sum();
        SerReport { entries, total }
    }

    /// Per-node entries in arena order.
    #[must_use]
    pub fn entries(&self) -> &[SerEntry] {
        &self.entries
    }

    /// The circuit's total SER (sum of node contributions).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Entries sorted by descending SER contribution — the paper's
    /// "identify the most vulnerable components" use-case.
    #[must_use]
    pub fn ranking(&self) -> Vec<SerEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| {
            b.ser
                .partial_cmp(&a.ser)
                .expect("SER values are finite")
                .then(a.node.cmp(&b.node))
        });
        sorted
    }

    /// The smallest set of nodes (by the greedy descending-SER order)
    /// whose combined contribution reaches `fraction` of the total;
    /// protecting them with hardened gates removes that share.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn cover_fraction(&self, fraction: f64) -> Vec<SerEntry> {
        assert!((0.0..=1.0).contains(&fraction), "fraction outside [0,1]");
        let target = self.total * fraction;
        let mut acc = 0.0;
        let mut chosen = Vec::new();
        for e in self.ranking() {
            if acc >= target || e.ser == 0.0 {
                break;
            }
            acc += e.ser;
            chosen.push(e);
        }
        chosen
    }
}

impl fmt::Display for SerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total SER: {:.6}", self.total)?;
        write!(f, "{} nodes", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    fn toy() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, b)\n",
            "toy",
        )
        .unwrap()
    }

    #[test]
    fn uniform_rseu() {
        let c = toy();
        let m = RseuModel::Uniform(2.5);
        for id in c.node_ids() {
            assert_eq!(m.rate(&c, id), 2.5);
        }
    }

    #[test]
    fn per_kind_rseu() {
        let c = toy();
        let mut rates = BTreeMap::new();
        rates.insert(GateKind::And, 3.0);
        let m = RseuModel::PerKind {
            rates,
            default: 1.0,
        };
        assert_eq!(m.rate(&c, c.find("u").unwrap()), 3.0);
        assert_eq!(m.rate(&c, c.find("y").unwrap()), 1.0);
        assert_eq!(m.rate(&c, c.find("a").unwrap()), 1.0);
    }

    #[test]
    fn fanin_scaled_rseu() {
        let c = toy();
        let m = RseuModel::FaninScaled {
            base: 1.0,
            slope: 0.5,
        };
        // u has 2 fanins: 1 * (1 + 0.5*2) = 2.0; inputs: 1.0.
        assert_eq!(m.rate(&c, c.find("u").unwrap()), 2.0);
        assert_eq!(m.rate(&c, c.find("a").unwrap()), 1.0);
    }

    #[test]
    fn latching_window() {
        let m = PlatchedModel::LatchingWindow {
            pulse_width: 0.1,
            setup: 0.05,
            hold: 0.05,
            clock_period: 1.0,
        };
        assert!((m.probability() - 0.2).abs() < 1e-12);
        // Clamped at 1.
        let m = PlatchedModel::LatchingWindow {
            pulse_width: 2.0,
            setup: 0.0,
            hold: 0.0,
            clock_period: 1.0,
        };
        assert_eq!(m.probability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn constant_platched_validated() {
        let _ = PlatchedModel::Constant(1.5).probability();
    }

    #[test]
    fn report_totals_and_ranking() {
        let c = toy();
        // Fake P_sens: a=0.5, b=0.9, u=0.25, y=1.0.
        let ps: Vec<f64> = c
            .node_ids()
            .map(|id| match c.node(id).name() {
                "a" => 0.5,
                "b" => 0.9,
                "u" => 0.25,
                "y" => 1.0,
                _ => 0.0,
            })
            .collect();
        let report = SerReport::assemble(
            &c,
            &ps,
            &RseuModel::default(),
            &PlatchedModel::Constant(0.5),
        );
        assert!((report.total() - (0.5 + 0.9 + 0.25 + 1.0) * 0.5).abs() < 1e-12);
        let ranking = report.ranking();
        assert_eq!(c.node(ranking[0].node).name(), "y");
        assert_eq!(c.node(ranking[1].node).name(), "b");
        assert_eq!(c.node(ranking[3].node).name(), "u");
        // Display smoke test.
        assert!(report.to_string().contains("total SER"));
    }

    #[test]
    fn assemble_split_discounts_only_ff_arrivals() {
        use crate::engine::EppAnalysis;
        use ser_sp::{IndependentSp, InputProbs, SpEngine};
        // site a reaches PO y1 = AND(a,b) [arr 0.5] and FF via
        // d = AND(a,c) [arr 0.5].
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\ny1 = AND(a, b)\nq = DFF(d)\nd = AND(a, c)\n",
            "split",
        )
        .unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let sites = analysis.all_sites();
        let a = c.find("a").unwrap();

        // With P_latched = 1, split == plain combination.
        let full = SerReport::assemble_split(
            &c,
            &sites,
            &RseuModel::default(),
            &PlatchedModel::Constant(1.0),
        );
        let plain = sites[a.index()].p_sensitized();
        assert!((full.entries()[a.index()].ser - plain).abs() < 1e-12);

        // With P_latched = 0, only the PO path remains: 0.5.
        let po_only = SerReport::assemble_split(
            &c,
            &sites,
            &RseuModel::default(),
            &PlatchedModel::Constant(0.0),
        );
        assert!((po_only.entries()[a.index()].ser - 0.5).abs() < 1e-12);

        // Intermediate latching sits strictly between.
        let half = SerReport::assemble_split(
            &c,
            &sites,
            &RseuModel::default(),
            &PlatchedModel::Constant(0.5),
        );
        let v = half.entries()[a.index()].ser;
        assert!(v > 0.5 && v < plain, "0.5 < {v} < {plain}");
        // p_sensitized column stays undiscounted.
        assert_eq!(half.entries()[a.index()].p_sensitized, plain);
    }

    #[test]
    fn cover_fraction_greedy() {
        let c = toy();
        let ps = vec![0.5, 0.9, 0.25, 1.0];
        let report = SerReport::assemble(&c, &ps, &RseuModel::default(), &PlatchedModel::default());
        // Total = 2.65. Covering 50% (1.325) needs y (1.0) + b (0.9).
        let cover = report.cover_fraction(0.5);
        assert_eq!(cover.len(), 2);
        assert_eq!(c.node(cover[0].node).name(), "y");
        // Covering 0% needs nothing.
        assert!(report.cover_fraction(0.0).is_empty());
        // Covering 100% needs every nonzero node.
        assert_eq!(report.cover_fraction(1.0).len(), 4);
    }
}
