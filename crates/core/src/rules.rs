//! EPP propagation rules — Table 1 of the paper, extended to every gate
//! kind in the netlist IR.
//!
//! The paper prints the AND, OR and NOT rules; the rest follow:
//! NAND/NOR are the AND/OR rules composed with the NOT swap, BUF and the
//! flip-flop D pin are identities, and XOR/XNOR admit an *exact*
//! symbolic rule because XOR is linear — representing each value as
//! `c ⊕ d·x` (with `x` the unknown erroneous value, so `0 = (0,0)`,
//! `1 = (1,0)`, `a = (0,1)`, `ā = (1,1)`), an XOR gate adds tuples
//! componentwise over GF(2).
//!
//! All rules assume the gate's inputs are independent — the same
//! assumption the paper makes; its accuracy under reconvergence is
//! quantified against the exact oracle in this crate's tests and the
//! ablation benches.
//!
//! # The fused 4-wide form
//!
//! Internally every rule runs over 4-wide lane arrays `[Pa, Pā, P0,
//! P1]` (see [`FourValue::lanes`]) in a **single fused pass**: the AND
//! and OR rules keep their three running products in independent
//! accumulator lanes updated together per fanin (instead of
//! re-traversing the fanin list once per product), and XOR's bilinear
//! symbol addition is written as four unrolled lane expressions. Per
//! accumulator, the multiplication order is exactly the order the
//! original three-pass formulation used, so the fused form is
//! **bit-identical** — it only removes redundant traversals and gives
//! the compiler independent lanes to vectorize (`std::simd::f64x4`
//! drops in without reassociation once the toolchain allows it).
//!
//! The sweep kernel drives the same cores through [`RuleOp`] +
//! [`propagate_fused`], gathering fanin lanes lazily so no
//! intermediate tuple buffer is materialized; the public
//! [`propagate`] wraps them for slice callers.

use ser_netlist::GateKind;

use crate::four_value::FourValue;

/// The compiled dispatch of one on-path gate: which fused rule core to
/// run, and whether the output is seen through an inverter. Resolved
/// **once per gate** — the per-fanin inner loops below are
/// dispatch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RuleOp {
    class: RuleClass,
    invert: bool,
}

/// The four fused rule cores (NAND/NOR/XNOR/NOT are the base class
/// composed with the NOT swap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RuleClass {
    /// BUF and the flip-flop D pin: the tuple passes through.
    Copy,
    /// Table 1, AND row.
    And,
    /// Table 1, OR row (the AND rule's dual).
    Or,
    /// The exact GF(2) symbol addition.
    Xor,
}

impl RuleOp {
    /// Classifies a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a source ([`GateKind::Input`],
    /// [`GateKind::Const0`], [`GateKind::Const1`]) — an error cannot
    /// propagate *into* a source.
    #[inline]
    pub(crate) fn of(kind: GateKind) -> RuleOp {
        let (class, invert) = match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                panic!("{kind} cannot be an on-path gate")
            }
            // The D pin passes the tuple through; latching is accounted
            // for by `P_latched`, not by the propagation rules.
            GateKind::Buf | GateKind::Dff => (RuleClass::Copy, false),
            GateKind::Not => (RuleClass::Copy, true),
            GateKind::And => (RuleClass::And, false),
            GateKind::Nand => (RuleClass::And, true),
            GateKind::Or => (RuleClass::Or, false),
            GateKind::Nor => (RuleClass::Or, true),
            GateKind::Xor => (RuleClass::Xor, false),
            GateKind::Xnor => (RuleClass::Xor, true),
        };
        RuleOp { class, invert }
    }
}

/// Runs a pre-dispatched rule over lazily gathered fanin lanes — the
/// sweep kernel's entry point: the dispatch happened in
/// [`RuleOp::of`], outside the per-fanin loop, and the iterator lets
/// the caller resolve on-path/off-path fanins straight into lanes with
/// no intermediate buffer.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[inline]
pub(crate) fn propagate_fused<I: Iterator<Item = [f64; 4]>>(
    op: RuleOp,
    mut inputs: I,
) -> FourValue {
    let out = match op.class {
        RuleClass::Copy => FourValue::from_lanes(inputs.next().expect("gate has a fanin")),
        RuleClass::And => and_core(inputs),
        RuleClass::Or => or_core(inputs),
        RuleClass::Xor => xor_core(inputs),
    };
    if op.invert {
        out.invert()
    } else {
        out
    }
}

/// Applies the propagation rule of `kind` to the gate's fanin tuples
/// (on-path fanins carry real four-value tuples; off-path fanins carry
/// [`FourValue::from_signal_probability`] tuples).
///
/// # Panics
///
/// Panics if `inputs.len()` is illegal for `kind`, or if `kind` is
/// [`GateKind::Input`], [`GateKind::Const0`] or [`GateKind::Const1`]
/// (sources are never on-path gates — an error cannot propagate *into*
/// a source).
#[must_use]
pub fn propagate(kind: GateKind, inputs: &[FourValue]) -> FourValue {
    assert!(
        kind.arity_ok(inputs.len()),
        "{kind} cannot take {} inputs",
        inputs.len()
    );
    propagate_fused(RuleOp::of(kind), inputs.iter().map(|x| x.lanes()))
}

/// Table 1, AND row, fused:
/// `P1 = Π P1(Xi)`,
/// `Pa = Π [P1(Xi) + Pa(Xi)] − P1`,
/// `Pā = Π [P1(Xi) + Pā(Xi)] − P1`,
/// `P0 = 1 − (P1 + Pa + Pā)`.
///
/// The three products run as independent accumulator lanes in one pass
/// over the fanins; each lane multiplies in fanin order, exactly as the
/// one-product-per-traversal form did — bit-identical, three times
/// fewer traversals.
#[inline]
fn and_core(inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = [1.0f64, 1.0, 1.0];
    for [pa, pa_bar, _p0, p1] in inputs {
        acc = [acc[0] * p1, acc[1] * (p1 + pa), acc[2] * (p1 + pa_bar)];
    }
    let p1 = acc[0];
    let pa = acc[1] - p1;
    let pa_bar = acc[2] - p1;
    let p0 = 1.0 - (p1 + pa + pa_bar);
    FourValue::new_clamped(pa, pa_bar, p0, p1)
}

/// Table 1, OR row (the AND rule's dual), fused the same way:
/// `P0 = Π P0(Xi)`,
/// `Pa = Π [P0(Xi) + Pa(Xi)] − P0`,
/// `Pā = Π [P0(Xi) + Pā(Xi)] − P0`,
/// `P1 = 1 − (P0 + Pa + Pā)`.
#[inline]
fn or_core(inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = [1.0f64, 1.0, 1.0];
    for [pa, pa_bar, p0, _p1] in inputs {
        acc = [acc[0] * p0, acc[1] * (p0 + pa), acc[2] * (p0 + pa_bar)];
    }
    let p0 = acc[0];
    let pa = acc[1] - p0;
    let pa_bar = acc[2] - p0;
    let p1 = 1.0 - (p0 + pa + pa_bar);
    FourValue::new_clamped(pa, pa_bar, p0, p1)
}

/// Exact XOR rule: fold the inputs pairwise through the GF(2) symbol
/// addition `0=(0,0), 1=(1,0), a=(0,1), ā=(1,1)`:
///
/// ```text
/// ⊕ | 0   1   a   ā
/// --+----------------
/// 0 | 0   1   a   ā
/// 1 | 1   0   ā   a
/// a | a   ā   0   1
/// ā | ā   a   1   0
/// ```
///
/// Note `a ⊕ a = 0` and `a ⊕ ā = 1`: two copies of the error meeting at
/// an XOR cancel *regardless of the error's actual value* — the
/// polarity bookkeeping that motivates the paper's four-value tuple.
#[inline]
fn xor_core(mut inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = inputs.next().expect("XOR has at least one input");
    for x in inputs {
        acc = xor2(acc, x);
    }
    FourValue::from_lanes(acc)
}

/// One GF(2) symbol addition over lanes — four unrolled output lanes,
/// each summing its four products in the fixed order below (the
/// bit-identity contract; reassociating across lanes is what a future
/// `f64x4` port must *not* do without re-baselining).
#[inline]
fn xor2(l: [f64; 4], r: [f64; 4]) -> [f64; 4] {
    let [lpa, lpab, lp0, lp1] = l;
    let [rpa, rpab, rp0, rp1] = r;
    // out = 0: (0,0),(1,1),(a,a),(ā,ā)
    let p0 = lp0 * rp0 + lp1 * rp1 + lpa * rpa + lpab * rpab;
    // out = 1: (0,1),(1,0),(a,ā),(ā,a)
    let p1 = lp0 * rp1 + lp1 * rp0 + lpa * rpab + lpab * rpa;
    // out = a: (0,a),(a,0),(1,ā),(ā,1)
    let pa = lp0 * rpa + lpa * rp0 + lp1 * rpab + lpab * rp1;
    // out = ā: (0,ā),(ā,0),(1,a),(a,1)
    let pa_bar = lp0 * rpab + lpab * rp0 + lp1 * rpa + lpa * rp1;
    FourValue::new_clamped(pa, pa_bar, p0, p1).lanes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn off(sp: f64) -> FourValue {
        FourValue::from_signal_probability(sp)
    }

    /// The paper's worked Fig. 1 numbers: H = OR(C, D, G) with
    /// C off-path (SP 0.3), D = 0.2(a)+0.8(0), G = 0.7(ā)+0.3(0).
    #[test]
    fn figure1_or_gate() {
        let c = off(0.3);
        let d = FourValue::new(0.2, 0.0, 0.8, 0.0);
        let g = FourValue::new(0.0, 0.7, 0.3, 0.0);
        let h = propagate(GateKind::Or, &[c, d, g]);
        assert!((h.p0() - 0.168).abs() < 1e-12, "P0 = {}", h.p0());
        assert!((h.pa() - 0.042).abs() < 1e-12, "Pa = {}", h.pa());
        assert!((h.pa_bar() - 0.392).abs() < 1e-12, "Pā = {}", h.pa_bar());
        assert!((h.p1() - 0.398).abs() < 1e-12, "P1 = {}", h.p1());
    }

    #[test]
    fn and_with_one_off_path_side() {
        // Error arrives clean (pure a); side input has SP 0.7.
        // AND propagates iff side is 1: Pa = 0.7; blocked at 0 otherwise.
        let out = propagate(GateKind::And, &[FourValue::error_site(), off(0.7)]);
        assert!((out.pa() - 0.7).abs() < 1e-12);
        assert_eq!(out.pa_bar(), 0.0);
        assert!((out.p0() - 0.3).abs() < 1e-12);
        assert_eq!(out.p1(), 0.0);
    }

    #[test]
    fn or_with_one_off_path_side() {
        // OR propagates iff side is 0.
        let out = propagate(GateKind::Or, &[FourValue::error_site(), off(0.7)]);
        assert!((out.pa() - 0.3).abs() < 1e-12);
        assert!((out.p1() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn nand_nor_compose_not() {
        let inputs = [FourValue::error_site(), off(0.6)];
        let nand = propagate(GateKind::Nand, &inputs);
        let and_not = propagate(GateKind::And, &inputs).invert();
        assert_eq!(nand, and_not);
        let nor = propagate(GateKind::Nor, &inputs);
        let or_not = propagate(GateKind::Or, &inputs).invert();
        assert_eq!(nor, or_not);
        // NAND flips polarity: incoming a leaves as ā.
        assert!(nand.pa_bar() > 0.0);
        assert_eq!(nand.pa(), 0.0);
    }

    #[test]
    fn buf_and_dff_are_identity() {
        let v = FourValue::new(0.2, 0.3, 0.4, 0.1);
        assert_eq!(propagate(GateKind::Buf, &[v]), v);
        assert_eq!(propagate(GateKind::Dff, &[v]), v);
    }

    #[test]
    fn not_swaps() {
        let v = FourValue::new(0.2, 0.3, 0.4, 0.1);
        let w = propagate(GateKind::Not, &[v]);
        assert_eq!(w, v.invert());
    }

    #[test]
    fn xor_cancels_equal_polarity() {
        // a ⊕ a = 0 with certainty.
        let a = FourValue::error_site();
        let out = propagate(GateKind::Xor, &[a, a]);
        assert_eq!(out.p0(), 1.0);
        assert_eq!(out.p_arrival(), 0.0);
    }

    #[test]
    fn xor_of_a_and_abar_is_one() {
        let a = FourValue::error_site();
        let abar = a.invert();
        let out = propagate(GateKind::Xor, &[a, abar]);
        assert_eq!(out.p1(), 1.0);
    }

    #[test]
    fn xor_with_off_path_side_flips_polarity_by_sp() {
        // XOR with side SP p: error passes always; polarity flips iff
        // side = 1.
        let out = propagate(GateKind::Xor, &[FourValue::error_site(), off(0.3)]);
        assert!((out.pa() - 0.7).abs() < 1e-12);
        assert!((out.pa_bar() - 0.3).abs() < 1e-12);
        assert_eq!(out.p0() + out.p1(), 0.0);
    }

    #[test]
    fn xnor_is_xor_inverted() {
        let inputs = [FourValue::error_site(), off(0.3)];
        assert_eq!(
            propagate(GateKind::Xnor, &inputs),
            propagate(GateKind::Xor, &inputs).invert()
        );
    }

    #[test]
    fn three_input_xor_associates() {
        let v1 = FourValue::new(0.2, 0.1, 0.4, 0.3);
        let v2 = FourValue::new(0.0, 0.5, 0.25, 0.25);
        let v3 = off(0.5);
        let left = propagate(GateKind::Xor, &[propagate(GateKind::Xor, &[v1, v2]), v3]);
        let flat = propagate(GateKind::Xor, &[v1, v2, v3]);
        assert!(left.max_abs_diff(&flat) < 1e-12);
        let right = propagate(GateKind::Xor, &[v1, propagate(GateKind::Xor, &[v2, v3])]);
        assert!(right.max_abs_diff(&flat) < 1e-12);
    }

    #[test]
    fn all_off_path_inputs_yield_plain_signal_probability() {
        // With no error on any input, the rules degenerate to the
        // independent SP computation.
        let out = propagate(GateKind::And, &[off(0.5), off(0.5)]);
        assert_eq!(out.p_arrival(), 0.0);
        assert!((out.p1() - 0.25).abs() < 1e-12);
        let out = propagate(GateKind::Or, &[off(0.5), off(0.5)]);
        assert!((out.p1() - 0.75).abs() < 1e-12);
        let out = propagate(GateKind::Xor, &[off(0.5), off(0.5)]);
        assert!((out.p1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outputs_always_sum_to_one() {
        // Spot-check closure over a grid of inputs for every logic kind.
        let grid = [
            FourValue::new(0.25, 0.25, 0.25, 0.25),
            FourValue::new(1.0, 0.0, 0.0, 0.0),
            FourValue::new(0.0, 0.0, 0.3, 0.7),
            FourValue::new(0.1, 0.6, 0.1, 0.2),
        ];
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for &x in &grid {
                for &y in &grid {
                    let out = propagate(kind, &[x, y]);
                    assert!((out.sum() - 1.0).abs() < 1e-9, "{kind}: sum {}", out.sum());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot be an on-path gate")]
    fn sources_rejected() {
        let _ = propagate(GateKind::Const0, &[]);
    }
}

#[cfg(test)]
mod property_tests {
    //! The rules must equal brute-force enumeration over the four-symbol
    //! alphabet `{0, 1, a, ā}` for *independent* inputs — that is the
    //! exact semantics Table 1 encodes. Symbols are encoded as
    //! `value = c ⊕ d·x` with `x` the (unknown) erroneous value.

    use super::*;
    use crate::four_value::FourValue;
    use proptest::prelude::*;

    /// (c, d) encodings: 0, 1, a, ā.
    const SYMBOLS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

    fn symbol_probability(v: &FourValue, sym: usize) -> f64 {
        match sym {
            0 => v.p0(),
            1 => v.p1(),
            2 => v.pa(),
            _ => v.pa_bar(),
        }
    }

    /// Evaluates the gate over concrete bools for a given x, per input
    /// symbol assignment.
    fn eval_for_x(kind: GateKind, assignment: &[usize], x: bool) -> bool {
        let bools: Vec<bool> = assignment
            .iter()
            .map(|&s| {
                let (c, d) = SYMBOLS[s];
                c ^ (d & x)
            })
            .collect();
        kind.eval_bool(&bools)
    }

    /// Brute-force reference: enumerate all 4^n input-symbol
    /// assignments, weight by independence, classify the output symbol.
    fn enumerate(kind: GateKind, inputs: &[FourValue]) -> FourValue {
        let n = inputs.len();
        let (mut pa, mut pab, mut p0, mut p1) = (0.0, 0.0, 0.0, 0.0);
        for code in 0..4usize.pow(n as u32) {
            let assignment: Vec<usize> = (0..n).map(|i| code >> (2 * i) & 3).collect();
            let w: f64 = assignment
                .iter()
                .zip(inputs)
                .map(|(&s, v)| symbol_probability(v, s))
                .product();
            if w == 0.0 {
                continue;
            }
            let v0 = eval_for_x(kind, &assignment, false);
            let v1 = eval_for_x(kind, &assignment, true);
            match (v0, v1) {
                (false, false) => p0 += w,
                (true, true) => p1 += w,
                (false, true) => pa += w,  // equals x: even parity
                (true, false) => pab += w, // equals !x: odd parity
            }
        }
        FourValue::new_clamped(pa, pab, p0, p1)
    }

    /// Strategy: a normalized four-value tuple.
    fn four_value() -> impl Strategy<Value = FourValue> {
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c, d)| {
            let sum = a + b + c + d;
            if sum == 0.0 {
                FourValue::from_signal_probability(0.5)
            } else {
                FourValue::new_clamped(a / sum, b / sum, c / sum, d / sum)
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// AND/OR/NOT (the published Table 1) and NAND/NOR/XOR/XNOR/BUF
        /// (our derived rules) all match symbolic enumeration exactly.
        #[test]
        fn rules_match_symbolic_enumeration(
            inputs in proptest::collection::vec(four_value(), 1..4),
            kind_idx in 0usize..8,
        ) {
            let kind = GateKind::LOGIC[kind_idx];
            // Unary kinds only take the first input.
            let inputs: Vec<FourValue> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                inputs[..1].to_vec()
            } else {
                inputs
            };
            let fast = propagate(kind, &inputs);
            let slow = enumerate(kind, &inputs);
            prop_assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "{kind}: rule {fast} vs enumeration {slow}"
            );
        }

        /// Closure: outputs are valid probability tuples.
        #[test]
        fn rules_preserve_tuple_invariant(
            inputs in proptest::collection::vec(four_value(), 2..4),
            kind_idx in 0usize..8,
        ) {
            let kind = GateKind::LOGIC[kind_idx];
            let inputs: Vec<FourValue> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                inputs[..1].to_vec()
            } else {
                inputs
            };
            let out = propagate(kind, &inputs);
            prop_assert!((out.sum() - 1.0).abs() < 1e-9);
            prop_assert!(out.pa() >= 0.0 && out.pa() <= 1.0);
            prop_assert!(out.pa_bar() >= 0.0 && out.pa_bar() <= 1.0);
        }

        /// De Morgan at the rule level: NAND(xs) = NOT(AND(xs)) and the
        /// OR rule equals AND over inverted inputs, inverted.
        #[test]
        fn de_morgan_duality(inputs in proptest::collection::vec(four_value(), 2..4)) {
            let or_direct = propagate(GateKind::Or, &inputs);
            let inverted: Vec<FourValue> = inputs.iter().map(FourValue::invert).collect();
            let or_via_and = propagate(GateKind::And, &inverted).invert();
            prop_assert!(or_direct.max_abs_diff(&or_via_and) < 1e-9);
        }
    }
}
