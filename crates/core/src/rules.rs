//! EPP propagation rules — Table 1 of the paper, extended to every gate
//! kind in the netlist IR.
//!
//! The paper prints the AND, OR and NOT rules; the rest follow:
//! NAND/NOR are the AND/OR rules composed with the NOT swap, BUF and the
//! flip-flop D pin are identities, and XOR/XNOR admit an *exact*
//! symbolic rule because XOR is linear — representing each value as
//! `c ⊕ d·x` (with `x` the unknown erroneous value, so `0 = (0,0)`,
//! `1 = (1,0)`, `a = (0,1)`, `ā = (1,1)`), an XOR gate adds tuples
//! componentwise over GF(2).
//!
//! All rules assume the gate's inputs are independent — the same
//! assumption the paper makes; its accuracy under reconvergence is
//! quantified against the exact oracle in this crate's tests and the
//! ablation benches.
//!
//! # The fused 4-wide form
//!
//! Internally every rule runs over 4-wide lane arrays `[Pa, Pā, P0,
//! P1]` (see [`FourValue::lanes`]) in a **single fused pass**: the AND
//! and OR rules keep their three running products in independent
//! accumulator lanes updated together per fanin (instead of
//! re-traversing the fanin list once per product), and XOR's bilinear
//! symbol addition is written as four unrolled lane expressions. Per
//! accumulator, the multiplication order is exactly the order the
//! original three-pass formulation used, so the fused form is
//! **bit-identical** — it only removes redundant traversals and gives
//! the compiler independent lanes to vectorize.
//!
//! That vectorization is now real: the `*_core_v` twins below run the
//! same cores over the [`LaneVec`] abstraction (`crates/core/src/simd.rs`)
//! — AVX2 `__m256d` or the plain-array scalar twin, chosen once per
//! sweep. The vector forms use only lane-wise `vmulpd`/`vaddpd` plus
//! whole-vector shuffles and **no FMA**, so each lane performs exactly
//! the scalar sequence and bit-identity is preserved rather than
//! re-baselined.
//!
//! The sweep kernel drives the same cores through [`RuleOp`] +
//! [`propagate_fused_v`], gathering fanin lanes lazily so no
//! intermediate tuple buffer is materialized; the scalar
//! [`propagate_fused`] remains the reference form, and the public
//! [`propagate`] wraps it for slice callers.

use ser_netlist::GateKind;

use crate::four_value::FourValue;
use crate::simd::{imm4, LaneVec};

/// The compiled dispatch of one on-path gate: which fused rule core to
/// run, and whether the output is seen through an inverter. Resolved
/// **once per gate** — the per-fanin inner loops below are
/// dispatch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RuleOp {
    class: RuleClass,
    invert: bool,
}

/// The four fused rule cores (NAND/NOR/XNOR/NOT are the base class
/// composed with the NOT swap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RuleClass {
    /// BUF and the flip-flop D pin: the tuple passes through.
    Copy,
    /// Table 1, AND row.
    And,
    /// Table 1, OR row (the AND rule's dual).
    Or,
    /// The exact GF(2) symbol addition.
    Xor,
}

impl RuleOp {
    /// Classifies a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a source ([`GateKind::Input`],
    /// [`GateKind::Const0`], [`GateKind::Const1`]) — an error cannot
    /// propagate *into* a source.
    #[inline]
    pub(crate) fn of(kind: GateKind) -> RuleOp {
        let (class, invert) = match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                panic!("{kind} cannot be an on-path gate")
            }
            // The D pin passes the tuple through; latching is accounted
            // for by `P_latched`, not by the propagation rules.
            GateKind::Buf | GateKind::Dff => (RuleClass::Copy, false),
            GateKind::Not => (RuleClass::Copy, true),
            GateKind::And => (RuleClass::And, false),
            GateKind::Nand => (RuleClass::And, true),
            GateKind::Or => (RuleClass::Or, false),
            GateKind::Nor => (RuleClass::Or, true),
            GateKind::Xor => (RuleClass::Xor, false),
            GateKind::Xnor => (RuleClass::Xor, true),
        };
        RuleOp { class, invert }
    }
}

/// Runs a pre-dispatched rule over lazily gathered fanin lanes — the
/// sweep kernel's entry point: the dispatch happened in
/// [`RuleOp::of`], outside the per-fanin loop, and the iterator lets
/// the caller resolve on-path/off-path fanins straight into lanes with
/// no intermediate buffer.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[inline]
pub(crate) fn propagate_fused<I: Iterator<Item = [f64; 4]>>(
    op: RuleOp,
    mut inputs: I,
) -> FourValue {
    let out = match op.class {
        RuleClass::Copy => FourValue::from_lanes(inputs.next().expect("gate has a fanin")),
        RuleClass::And => and_core(inputs),
        RuleClass::Or => or_core(inputs),
        RuleClass::Xor => xor_core(inputs),
    };
    if op.invert {
        out.invert()
    } else {
        out
    }
}

/// Applies the propagation rule of `kind` to the gate's fanin tuples
/// (on-path fanins carry real four-value tuples; off-path fanins carry
/// [`FourValue::from_signal_probability`] tuples).
///
/// # Panics
///
/// Panics if `inputs.len()` is illegal for `kind`, or if `kind` is
/// [`GateKind::Input`], [`GateKind::Const0`] or [`GateKind::Const1`]
/// (sources are never on-path gates — an error cannot propagate *into*
/// a source).
#[must_use]
pub fn propagate(kind: GateKind, inputs: &[FourValue]) -> FourValue {
    assert!(
        kind.arity_ok(inputs.len()),
        "{kind} cannot take {} inputs",
        inputs.len()
    );
    propagate_fused(RuleOp::of(kind), inputs.iter().map(|x| x.lanes()))
}

/// Table 1, AND row, fused:
/// `P1 = Π P1(Xi)`,
/// `Pa = Π [P1(Xi) + Pa(Xi)] − P1`,
/// `Pā = Π [P1(Xi) + Pā(Xi)] − P1`,
/// `P0 = 1 − (P1 + Pa + Pā)`.
///
/// The three products run as independent accumulator lanes in one pass
/// over the fanins; each lane multiplies in fanin order, exactly as the
/// one-product-per-traversal form did — bit-identical, three times
/// fewer traversals.
#[inline]
fn and_core(inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = [1.0f64, 1.0, 1.0];
    for [pa, pa_bar, _p0, p1] in inputs {
        acc = [acc[0] * p1, acc[1] * (p1 + pa), acc[2] * (p1 + pa_bar)];
    }
    let p1 = acc[0];
    let pa = acc[1] - p1;
    let pa_bar = acc[2] - p1;
    let p0 = 1.0 - (p1 + pa + pa_bar);
    FourValue::new_clamped(pa, pa_bar, p0, p1)
}

/// Table 1, OR row (the AND rule's dual), fused the same way:
/// `P0 = Π P0(Xi)`,
/// `Pa = Π [P0(Xi) + Pa(Xi)] − P0`,
/// `Pā = Π [P0(Xi) + Pā(Xi)] − P0`,
/// `P1 = 1 − (P0 + Pa + Pā)`.
#[inline]
fn or_core(inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = [1.0f64, 1.0, 1.0];
    for [pa, pa_bar, p0, _p1] in inputs {
        acc = [acc[0] * p0, acc[1] * (p0 + pa), acc[2] * (p0 + pa_bar)];
    }
    let p0 = acc[0];
    let pa = acc[1] - p0;
    let pa_bar = acc[2] - p0;
    let p1 = 1.0 - (p0 + pa + pa_bar);
    FourValue::new_clamped(pa, pa_bar, p0, p1)
}

/// Exact XOR rule: fold the inputs pairwise through the GF(2) symbol
/// addition `0=(0,0), 1=(1,0), a=(0,1), ā=(1,1)`:
///
/// ```text
/// ⊕ | 0   1   a   ā
/// --+----------------
/// 0 | 0   1   a   ā
/// 1 | 1   0   ā   a
/// a | a   ā   0   1
/// ā | ā   a   1   0
/// ```
///
/// Note `a ⊕ a = 0` and `a ⊕ ā = 1`: two copies of the error meeting at
/// an XOR cancel *regardless of the error's actual value* — the
/// polarity bookkeeping that motivates the paper's four-value tuple.
#[inline]
fn xor_core(mut inputs: impl Iterator<Item = [f64; 4]>) -> FourValue {
    let mut acc = inputs.next().expect("XOR has at least one input");
    for x in inputs {
        acc = xor2(acc, x);
    }
    FourValue::from_lanes(acc)
}

/// One GF(2) symbol addition over lanes — four unrolled output lanes,
/// each summing its four products in the fixed order below (the
/// bit-identity contract; reassociating across lanes is what a future
/// `f64x4` port must *not* do without re-baselining).
#[inline]
fn xor2(l: [f64; 4], r: [f64; 4]) -> [f64; 4] {
    let [lpa, lpab, lp0, lp1] = l;
    let [rpa, rpab, rp0, rp1] = r;
    // out = 0: (0,0),(1,1),(a,a),(ā,ā)
    let p0 = lp0 * rp0 + lp1 * rp1 + lpa * rpa + lpab * rpab;
    // out = 1: (0,1),(1,0),(a,ā),(ā,a)
    let p1 = lp0 * rp1 + lp1 * rp0 + lpa * rpab + lpab * rpa;
    // out = a: (0,a),(a,0),(1,ā),(ā,1)
    let pa = lp0 * rpa + lpa * rp0 + lp1 * rpab + lpab * rp1;
    // out = ā: (0,ā),(ā,0),(1,a),(a,1)
    let pa_bar = lp0 * rpab + lpab * rp0 + lp1 * rpa + lpa * rp1;
    FourValue::new_clamped(pa, pa_bar, p0, p1).lanes()
}

// --- Lane-vector twins -------------------------------------------------
//
// The same cores over the `LaneVec` abstraction. Bit-identity argument,
// per core:
//
// - AND/OR keep their three running products as lanes of one
//   accumulator vector; the per-fanin factor vector is built with one
//   broadcast shuffle, one lane-wise add and a blend, so lanes 0–2 see
//   exactly the scalar multiply/add sequence (lane 3 carries a junk
//   duplicate of the pivot product that is never read).
// - XOR's bilinear symbol addition becomes four shuffle/multiply terms
//   summed lane-wise **in the scalar's fixed order** `((t1+t2)+t3)+t4`
//   — no cross-lane reassociation, no FMA — then clamped like
//   `new_clamped`.
// - The NOT swap is a pure shuffle (no arithmetic at all).

/// The lane-vector [`propagate_fused`]: same dispatch, vector cores.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[inline(always)]
pub(crate) fn propagate_fused_v<V: LaneVec>(op: RuleOp, mut inputs: impl Iterator<Item = V>) -> V {
    let out = match op.class {
        RuleClass::Copy => inputs.next().expect("gate has a fanin"),
        RuleClass::And => and_core_v(inputs),
        RuleClass::Or => or_core_v(inputs),
        RuleClass::Xor => xor_core_v(inputs),
    };
    if op.invert {
        invert_v(out)
    } else {
        out
    }
}

/// The two-fanin [`propagate_fused_v`]: the dominant gate arity gets a
/// straight-line core with no fanin loop — same factor/epilogue
/// helpers, so the value of every lane is bit-identical to the general
/// form (`Copy` keeps its first-fanin semantics).
#[inline(always)]
pub(crate) fn propagate2_v<V: LaneVec>(op: RuleOp, a: V, b: V) -> V {
    let out = match op.class {
        RuleClass::Copy => a,
        RuleClass::And => unpivot_v::<V, 0b1000>(and_factors_v(a).mul(and_factors_v(b))),
        RuleClass::Or => unpivot_v::<V, 0b0100>(or_factors_v(a).mul(or_factors_v(b))),
        RuleClass::Xor => xor2_v(a, b),
    };
    if op.invert {
        invert_v(out)
    } else {
        out
    }
}

/// The NOT rule over lanes: swap `Pa ↔ Pā` and `P0 ↔ P1` — one shuffle.
#[inline(always)]
pub(crate) fn invert_v<V: LaneVec>(v: V) -> V {
    v.permute::<{ imm4(1, 0, 3, 2) }>()
}

/// The `PolarityMode::Merged` collapse over lanes:
/// `new_clamped(Pa + Pā, 0, P0, P1)` as one shuffle-add, two blends and
/// the lane clamp — the same values `FourValue::new_clamped` produces.
#[inline(always)]
pub(crate) fn merge_polarity_v<V: LaneVec>(v: V) -> V {
    // invert_v's shuffle puts Pā in lane 0, so lane 0 of the sum is
    // exactly the scalar `p_arrival = pa + pa_bar`.
    let arrival = v.add(invert_v(v));
    v.blend::<0b0001>(arrival)
        .blend::<0b0010>(V::zero())
        .clamp01()
}

/// [`and_core`] over lanes. Per fanin, one shuffle-add-blend builds the
/// factor vector `[P1, P1+Pa, P1+Pā, ·]` (the blend keeps the pivot
/// lane the raw pivot — no `+ 0.0` detour); the accumulator starts as
/// the *first* fanin's factors, because `1.0 × x == x` exactly for
/// every `f64`, so dropping the scalar's unit seed cannot change a bit.
/// The epilogue stays in registers: [`unpivot_v`] reproduces the scalar
/// subtract/sum/clamp sequence lane-for-lane.
#[inline(always)]
fn and_core_v<V: LaneVec>(mut inputs: impl Iterator<Item = V>) -> V {
    let f = inputs.next().expect("gate has a fanin");
    let mut acc = and_factors_v(f);
    for f in inputs {
        acc = acc.mul(and_factors_v(f));
    }
    // acc = [Π P1, Π (P1+Pa), Π (P1+Pā), junk]; the pivot product lands
    // in the output's lane 3 (`P1`).
    unpivot_v::<V, 0b1000>(acc)
}

#[inline(always)]
fn and_factors_v<V: LaneVec>(f: V) -> V {
    let pivot = f.permute::<{ imm4(3, 3, 3, 3) }>();
    // Lanes 1/2 hold Pa/Pā of the fanin; lanes 0/3 are junk the blend
    // discards.
    let shifted = f.permute::<{ imm4(0, 0, 1, 0) }>();
    pivot.blend::<0b0110>(pivot.add(shifted))
}

/// [`or_core`] over lanes — the dual, pivoting on `P0` (lane 2); the
/// pivot product lands in the output's lane 2.
#[inline(always)]
fn or_core_v<V: LaneVec>(mut inputs: impl Iterator<Item = V>) -> V {
    let f = inputs.next().expect("gate has a fanin");
    let mut acc = or_factors_v(f);
    for f in inputs {
        acc = acc.mul(or_factors_v(f));
    }
    unpivot_v::<V, 0b0100>(acc)
}

#[inline(always)]
fn or_factors_v<V: LaneVec>(f: V) -> V {
    let pivot = f.permute::<{ imm4(2, 2, 2, 2) }>();
    let shifted = f.permute::<{ imm4(0, 0, 1, 0) }>();
    pivot.blend::<0b0110>(pivot.add(shifted))
}

/// The shared AND/OR epilogue over lanes, all in registers. With
/// `acc = [P, A, B, ·]` (`P` the pivot product, `A`/`B` the `+Pa`/`+Pā`
/// products) it computes, in the scalar cores' exact order,
/// `pa = A − P`, `pā = B − P`, `rest = 1 − ((P + pa) + pā)`, and
/// assembles `[pa, pā, ·, ·]` with `P` in the `PIVOT_LANE`-masked lane
/// and `rest` in the other, then applies the `new_clamped` lane clamp.
/// `PIVOT_LANE` is `0b1000` for AND (`P = Π P1` → lane 3) and `0b0100`
/// for OR (`P = Π P0` → lane 2).
#[inline(always)]
fn unpivot_v<V: LaneVec, const PIVOT_LANE: i32>(acc: V) -> V {
    let p = acc.permute::<{ imm4(0, 0, 0, 0) }>();
    // d = [0, pa, pā, junk]: lane-wise subtraction is the scalar's
    // `A − P` / `B − P` verbatim.
    let d = acc.sub(p);
    let sum = p
        .add(d.permute::<{ imm4(1, 1, 1, 1) }>())
        .add(d.permute::<{ imm4(2, 2, 2, 2) }>());
    let rest = V::splat(1.0).sub(sum);
    // [pa, pā, 0, 0], then the upper half from {P, rest} by mask.
    let lower = d.permute::<{ imm4(1, 2, 0, 0) }>();
    let upper = if PIVOT_LANE == 0b1000 {
        rest.blend::<0b1000>(p)
    } else {
        p.blend::<0b1000>(rest)
    };
    lower.blend::<0b1100>(upper).clamp01()
}

/// [`xor_core`] over lanes: fold through [`xor2_v`].
#[inline(always)]
fn xor_core_v<V: LaneVec>(mut inputs: impl Iterator<Item = V>) -> V {
    let mut acc = inputs.next().expect("XOR has at least one input");
    for x in inputs {
        acc = xor2_v(acc, x);
    }
    acc
}

/// [`xor2`] over lanes. Each output lane needs the same four products
/// the scalar form writes out; shuffling *both* inputs per term lines
/// the products up so the four lane-wise sums run in the scalar's
/// fixed order. Lane layout is `[Pa, Pā, P0, P1]`; read each `imm4`
/// column against `xor2`'s four expressions to check a term.
#[inline(always)]
fn xor2_v<V: LaneVec>(l: V, r: V) -> V {
    // Term 1: lp0 * (rpa, rpā, rp0, rp1).
    let t1 = l.permute::<{ imm4(2, 2, 2, 2) }>().mul(r);
    // Term 2: (lpa, lpā, lp1, lp1) * (rp0, rp0, rp1, rp0).
    let t2 = l
        .permute::<{ imm4(0, 1, 3, 3) }>()
        .mul(r.permute::<{ imm4(2, 2, 3, 2) }>());
    // Term 3: (lp1, lp1, lpa, lpa) * (rpā, rpa, rpa, rpā).
    let t3 = l
        .permute::<{ imm4(3, 3, 0, 0) }>()
        .mul(r.permute::<{ imm4(1, 0, 0, 1) }>());
    // Term 4: (lpā, lpa, lpā, lpā) * (rp1, rp1, rpā, rpa).
    let t4 = l
        .permute::<{ imm4(1, 0, 1, 1) }>()
        .mul(r.permute::<{ imm4(3, 3, 1, 0) }>());
    // Fixed order, no FMA: ((t1 + t2) + t3) + t4, then the
    // `new_clamped` lane clamp.
    t1.add(t2).add(t3).add(t4).clamp01()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn off(sp: f64) -> FourValue {
        FourValue::from_signal_probability(sp)
    }

    /// The paper's worked Fig. 1 numbers: H = OR(C, D, G) with
    /// C off-path (SP 0.3), D = 0.2(a)+0.8(0), G = 0.7(ā)+0.3(0).
    #[test]
    fn figure1_or_gate() {
        let c = off(0.3);
        let d = FourValue::new(0.2, 0.0, 0.8, 0.0);
        let g = FourValue::new(0.0, 0.7, 0.3, 0.0);
        let h = propagate(GateKind::Or, &[c, d, g]);
        assert!((h.p0() - 0.168).abs() < 1e-12, "P0 = {}", h.p0());
        assert!((h.pa() - 0.042).abs() < 1e-12, "Pa = {}", h.pa());
        assert!((h.pa_bar() - 0.392).abs() < 1e-12, "Pā = {}", h.pa_bar());
        assert!((h.p1() - 0.398).abs() < 1e-12, "P1 = {}", h.p1());
    }

    #[test]
    fn and_with_one_off_path_side() {
        // Error arrives clean (pure a); side input has SP 0.7.
        // AND propagates iff side is 1: Pa = 0.7; blocked at 0 otherwise.
        let out = propagate(GateKind::And, &[FourValue::error_site(), off(0.7)]);
        assert!((out.pa() - 0.7).abs() < 1e-12);
        assert_eq!(out.pa_bar(), 0.0);
        assert!((out.p0() - 0.3).abs() < 1e-12);
        assert_eq!(out.p1(), 0.0);
    }

    #[test]
    fn or_with_one_off_path_side() {
        // OR propagates iff side is 0.
        let out = propagate(GateKind::Or, &[FourValue::error_site(), off(0.7)]);
        assert!((out.pa() - 0.3).abs() < 1e-12);
        assert!((out.p1() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn nand_nor_compose_not() {
        let inputs = [FourValue::error_site(), off(0.6)];
        let nand = propagate(GateKind::Nand, &inputs);
        let and_not = propagate(GateKind::And, &inputs).invert();
        assert_eq!(nand, and_not);
        let nor = propagate(GateKind::Nor, &inputs);
        let or_not = propagate(GateKind::Or, &inputs).invert();
        assert_eq!(nor, or_not);
        // NAND flips polarity: incoming a leaves as ā.
        assert!(nand.pa_bar() > 0.0);
        assert_eq!(nand.pa(), 0.0);
    }

    #[test]
    fn buf_and_dff_are_identity() {
        let v = FourValue::new(0.2, 0.3, 0.4, 0.1);
        assert_eq!(propagate(GateKind::Buf, &[v]), v);
        assert_eq!(propagate(GateKind::Dff, &[v]), v);
    }

    #[test]
    fn not_swaps() {
        let v = FourValue::new(0.2, 0.3, 0.4, 0.1);
        let w = propagate(GateKind::Not, &[v]);
        assert_eq!(w, v.invert());
    }

    #[test]
    fn xor_cancels_equal_polarity() {
        // a ⊕ a = 0 with certainty.
        let a = FourValue::error_site();
        let out = propagate(GateKind::Xor, &[a, a]);
        assert_eq!(out.p0(), 1.0);
        assert_eq!(out.p_arrival(), 0.0);
    }

    #[test]
    fn xor_of_a_and_abar_is_one() {
        let a = FourValue::error_site();
        let abar = a.invert();
        let out = propagate(GateKind::Xor, &[a, abar]);
        assert_eq!(out.p1(), 1.0);
    }

    #[test]
    fn xor_with_off_path_side_flips_polarity_by_sp() {
        // XOR with side SP p: error passes always; polarity flips iff
        // side = 1.
        let out = propagate(GateKind::Xor, &[FourValue::error_site(), off(0.3)]);
        assert!((out.pa() - 0.7).abs() < 1e-12);
        assert!((out.pa_bar() - 0.3).abs() < 1e-12);
        assert_eq!(out.p0() + out.p1(), 0.0);
    }

    #[test]
    fn xnor_is_xor_inverted() {
        let inputs = [FourValue::error_site(), off(0.3)];
        assert_eq!(
            propagate(GateKind::Xnor, &inputs),
            propagate(GateKind::Xor, &inputs).invert()
        );
    }

    #[test]
    fn three_input_xor_associates() {
        let v1 = FourValue::new(0.2, 0.1, 0.4, 0.3);
        let v2 = FourValue::new(0.0, 0.5, 0.25, 0.25);
        let v3 = off(0.5);
        let left = propagate(GateKind::Xor, &[propagate(GateKind::Xor, &[v1, v2]), v3]);
        let flat = propagate(GateKind::Xor, &[v1, v2, v3]);
        assert!(left.max_abs_diff(&flat) < 1e-12);
        let right = propagate(GateKind::Xor, &[v1, propagate(GateKind::Xor, &[v2, v3])]);
        assert!(right.max_abs_diff(&flat) < 1e-12);
    }

    #[test]
    fn all_off_path_inputs_yield_plain_signal_probability() {
        // With no error on any input, the rules degenerate to the
        // independent SP computation.
        let out = propagate(GateKind::And, &[off(0.5), off(0.5)]);
        assert_eq!(out.p_arrival(), 0.0);
        assert!((out.p1() - 0.25).abs() < 1e-12);
        let out = propagate(GateKind::Or, &[off(0.5), off(0.5)]);
        assert!((out.p1() - 0.75).abs() < 1e-12);
        let out = propagate(GateKind::Xor, &[off(0.5), off(0.5)]);
        assert!((out.p1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outputs_always_sum_to_one() {
        // Spot-check closure over a grid of inputs for every logic kind.
        let grid = [
            FourValue::new(0.25, 0.25, 0.25, 0.25),
            FourValue::new(1.0, 0.0, 0.0, 0.0),
            FourValue::new(0.0, 0.0, 0.3, 0.7),
            FourValue::new(0.1, 0.6, 0.1, 0.2),
        ];
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for &x in &grid {
                for &y in &grid {
                    let out = propagate(kind, &[x, y]);
                    assert!((out.sum() - 1.0).abs() < 1e-9, "{kind}: sum {}", out.sum());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot be an on-path gate")]
    fn sources_rejected() {
        let _ = propagate(GateKind::Const0, &[]);
    }
}

#[cfg(test)]
mod lane_vec_tests {
    //! The vector cores must equal the scalar cores **bitwise** — on
    //! the plain-array twin always, and on AVX2 when the host has it.

    use super::*;
    use crate::simd::{KernelBackend, Lane4, ScalarVec};

    fn scalar_run(op: RuleOp, inputs: &[Lane4]) -> [f64; 4] {
        propagate_fused(op, inputs.iter().map(|l| l.0)).lanes()
    }

    fn twin_run(op: RuleOp, inputs: &[Lane4]) -> [f64; 4] {
        propagate_fused_v(op, inputs.iter().map(ScalarVec::load))
            .store()
            .0
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_run(op: RuleOp, inputs: &[Lane4]) -> Option<[f64; 4]> {
        use crate::simd::AvxVec;
        // SAFETY: callers must hold `KernelBackend::Avx2.is_available()`
        // — the one call site below checks it before dispatching.
        #[target_feature(enable = "avx2")]
        unsafe fn run(op: RuleOp, inputs: &[Lane4]) -> [f64; 4] {
            propagate_fused_v(op, inputs.iter().map(AvxVec::load))
                .store()
                .0
        }
        if !KernelBackend::Avx2.is_available() {
            return None;
        }
        // SAFETY: AVX2 availability checked just above.
        Some(unsafe { run(op, inputs) })
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn avx2_run(_op: RuleOp, _inputs: &[Lane4]) -> Option<[f64; 4]> {
        None
    }

    fn assert_all_backends_agree(kind: GateKind, inputs: &[Lane4]) {
        let op = RuleOp::of(kind);
        let expected = scalar_run(op, inputs);
        assert_eq!(twin_run(op, inputs), expected, "{kind}: scalar twin");
        if let Some(avx) = avx2_run(op, inputs) {
            assert_eq!(avx, expected, "{kind}: AVX2");
        }
    }

    fn edge_inputs() -> Vec<Vec<Lane4>> {
        let denormal = f64::MIN_POSITIVE / 8.0;
        vec![
            vec![
                Lane4(FourValue::error_site().lanes()),
                Lane4(FourValue::from_signal_probability(0.7).lanes()),
            ],
            // Denormal probability mass in every slot the rules read.
            vec![
                Lane4([denormal, denormal, 0.5, 0.5 - 2.0 * denormal]),
                Lane4([0.25, 0.25, denormal, 0.5 - denormal]),
                Lane4([0.0, 1.0 - denormal, denormal, 0.0]),
            ],
            // Clamp edges: exact 0/1 lanes and near-1 sums whose
            // products overshoot by ULPs before `new_clamped`.
            vec![
                Lane4([0.0, 0.0, 1.0, 0.0]),
                Lane4([
                    1.0 - f64::EPSILON,
                    f64::EPSILON / 2.0,
                    f64::EPSILON / 2.0,
                    0.0,
                ]),
            ],
            vec![
                Lane4([0.1, 0.2, 0.3, 0.4]),
                Lane4([0.4, 0.3, 0.2, 0.1]),
                Lane4([0.25, 0.25, 0.25, 0.25]),
                Lane4([0.0, 0.0, 0.0, 1.0]),
            ],
        ]
    }

    #[test]
    fn vector_cores_match_scalar_cores_bitwise_on_edges() {
        for inputs in edge_inputs() {
            for kind in [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ] {
                assert_all_backends_agree(kind, &inputs);
            }
            assert_all_backends_agree(GateKind::Buf, &inputs[..1]);
            assert_all_backends_agree(GateKind::Not, &inputs[..1]);
        }
    }

    #[test]
    fn merge_polarity_matches_new_clamped() {
        for inputs in edge_inputs() {
            for lane in inputs {
                let v = FourValue::from_lanes(lane.0);
                let expected = FourValue::new_clamped(v.p_arrival(), 0.0, v.p0(), v.p1()).lanes();
                let twin = merge_polarity_v(ScalarVec::load(&lane)).store().0;
                assert_eq!(twin, expected);
            }
        }
    }
}

#[cfg(test)]
mod property_tests {
    //! The rules must equal brute-force enumeration over the four-symbol
    //! alphabet `{0, 1, a, ā}` for *independent* inputs — that is the
    //! exact semantics Table 1 encodes. Symbols are encoded as
    //! `value = c ⊕ d·x` with `x` the (unknown) erroneous value.

    use super::*;
    use crate::four_value::FourValue;
    use proptest::prelude::*;

    /// (c, d) encodings: 0, 1, a, ā.
    const SYMBOLS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

    fn symbol_probability(v: &FourValue, sym: usize) -> f64 {
        match sym {
            0 => v.p0(),
            1 => v.p1(),
            2 => v.pa(),
            _ => v.pa_bar(),
        }
    }

    /// Evaluates the gate over concrete bools for a given x, per input
    /// symbol assignment.
    fn eval_for_x(kind: GateKind, assignment: &[usize], x: bool) -> bool {
        let bools: Vec<bool> = assignment
            .iter()
            .map(|&s| {
                let (c, d) = SYMBOLS[s];
                c ^ (d & x)
            })
            .collect();
        kind.eval_bool(&bools)
    }

    /// Brute-force reference: enumerate all 4^n input-symbol
    /// assignments, weight by independence, classify the output symbol.
    fn enumerate(kind: GateKind, inputs: &[FourValue]) -> FourValue {
        let n = inputs.len();
        let (mut pa, mut pab, mut p0, mut p1) = (0.0, 0.0, 0.0, 0.0);
        for code in 0..4usize.pow(n as u32) {
            let assignment: Vec<usize> = (0..n).map(|i| code >> (2 * i) & 3).collect();
            let w: f64 = assignment
                .iter()
                .zip(inputs)
                .map(|(&s, v)| symbol_probability(v, s))
                .product();
            if w == 0.0 {
                continue;
            }
            let v0 = eval_for_x(kind, &assignment, false);
            let v1 = eval_for_x(kind, &assignment, true);
            match (v0, v1) {
                (false, false) => p0 += w,
                (true, true) => p1 += w,
                (false, true) => pa += w,  // equals x: even parity
                (true, false) => pab += w, // equals !x: odd parity
            }
        }
        FourValue::new_clamped(pa, pab, p0, p1)
    }

    /// Strategy: a normalized four-value tuple.
    fn four_value() -> impl Strategy<Value = FourValue> {
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c, d)| {
            let sum = a + b + c + d;
            if sum == 0.0 {
                FourValue::from_signal_probability(0.5)
            } else {
                FourValue::new_clamped(a / sum, b / sum, c / sum, d / sum)
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// AND/OR/NOT (the published Table 1) and NAND/NOR/XOR/XNOR/BUF
        /// (our derived rules) all match symbolic enumeration exactly.
        #[test]
        fn rules_match_symbolic_enumeration(
            inputs in proptest::collection::vec(four_value(), 1..4),
            kind_idx in 0usize..8,
        ) {
            let kind = GateKind::LOGIC[kind_idx];
            // Unary kinds only take the first input.
            let inputs: Vec<FourValue> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                inputs[..1].to_vec()
            } else {
                inputs
            };
            let fast = propagate(kind, &inputs);
            let slow = enumerate(kind, &inputs);
            prop_assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "{kind}: rule {fast} vs enumeration {slow}"
            );
        }

        /// Closure: outputs are valid probability tuples.
        #[test]
        fn rules_preserve_tuple_invariant(
            inputs in proptest::collection::vec(four_value(), 2..4),
            kind_idx in 0usize..8,
        ) {
            let kind = GateKind::LOGIC[kind_idx];
            let inputs: Vec<FourValue> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                inputs[..1].to_vec()
            } else {
                inputs
            };
            let out = propagate(kind, &inputs);
            prop_assert!((out.sum() - 1.0).abs() < 1e-9);
            prop_assert!(out.pa() >= 0.0 && out.pa() <= 1.0);
            prop_assert!(out.pa_bar() >= 0.0 && out.pa_bar() <= 1.0);
        }

        /// The lane-vector twin performs the scalar sequence exactly:
        /// bitwise equality, not epsilon.
        #[test]
        fn vector_twin_is_bit_identical(
            inputs in proptest::collection::vec(four_value(), 1..5),
            kind_idx in 0usize..8,
        ) {
            use crate::simd::{Lane4, LaneVec, ScalarVec};
            let kind = GateKind::LOGIC[kind_idx];
            let inputs: Vec<FourValue> = if matches!(kind, GateKind::Not | GateKind::Buf) {
                inputs[..1].to_vec()
            } else {
                inputs
            };
            let op = RuleOp::of(kind);
            let scalar = propagate_fused(op, inputs.iter().map(|v| v.lanes()));
            let twin = propagate_fused_v(
                op,
                inputs.iter().map(|v| ScalarVec::load(&Lane4(v.lanes()))),
            );
            prop_assert_eq!(scalar.lanes(), twin.store().0);
        }

        /// De Morgan at the rule level: NAND(xs) = NOT(AND(xs)) and the
        /// OR rule equals AND over inverted inputs, inverted.
        #[test]
        fn de_morgan_duality(inputs in proptest::collection::vec(four_value(), 2..4)) {
            let or_direct = propagate(GateKind::Or, &inputs);
            let inverted: Vec<FourValue> = inputs.iter().map(FourValue::invert).collect();
            let or_via_and = propagate(GateKind::And, &inverted).invert();
            prop_assert!(or_direct.max_abs_diff(&or_via_and) < 1e-9);
        }
    }
}
