//! Multi-cycle (sequential) error propagation — an extension beyond the
//! paper's single-cycle analysis.
//!
//! The paper counts an error as "observed" once it reaches a primary
//! output or is latched by a flip-flop. A latched error, however, may
//! surface at a primary output only cycles later (or be logically
//! masked and vanish). This module follows the error through time two
//! ways:
//!
//! - [`MultiCycleEpp`] — an analytical frame-expansion built from the
//!   one-pass EPP kernel: per-flip-flop corruption probabilities are
//!   propagated through a (FF → FF, FF → PO) arrival matrix computed by
//!   running the paper's algorithm with each flip-flop as the error
//!   site. Corrupted flip-flops are treated as independent, and error
//!   polarity is dropped across frames, so this is an approximation —
//!   cross-checked by the simulator below.
//! - [`multi_cycle_monte_carlo`] — ground truth by differential
//!   sequential simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ser_netlist::{Circuit, NodeId, ObservePoint};
use ser_sim::SeqSim;
use ser_sp::SpVector;

use crate::engine::{combine_sensitization, EppAnalysis, PolarityMode, WorkspacePool};

/// Analytical multi-cycle observation probabilities.
#[derive(Debug, Clone)]
pub struct MultiCycleEpp<'c> {
    circuit: &'c Circuit,
    /// `po_arrival[f]`: combined PO arrival probability when FF `f`'s
    /// output is the error site.
    po_arrival: Vec<f64>,
    /// `ff_arrival[f][g]`: arrival probability at FF `g`'s D pin when FF
    /// `f`'s output is the error site.
    ff_arrival: Vec<Vec<f64>>,
    analysis: EppAnalysis<'c>,
}

/// Per-cycle cumulative observation probabilities for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCycleResult {
    /// The error site.
    pub site: NodeId,
    /// `cumulative[k]`: probability the error was seen at a primary
    /// output within the first `k + 1` cycles (cycle 0 is the SEU
    /// cycle).
    pub cumulative: Vec<f64>,
    /// Residual per-flip-flop corruption probability after the last
    /// analyzed cycle (diagnostic: how much error is still "in flight").
    pub residual_corruption: Vec<f64>,
}

impl<'c> MultiCycleEpp<'c> {
    /// Compiles the frame-expansion tables: one EPP pass per flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
    /// topologically ordered.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not cover the circuit.
    pub fn new(circuit: &'c Circuit, sp: SpVector) -> Result<Self, ser_netlist::NetlistError> {
        Ok(Self::with_analysis(EppAnalysis::new(circuit, sp)?))
    }

    /// Compiles the frame-expansion tables on top of an existing
    /// single-cycle analysis — e.g. one handed out by an
    /// [`AnalysisSession`](crate::AnalysisSession) via
    /// [`epp()`](crate::AnalysisSession::epp), so topological order and
    /// SP are not recomputed. The per-flip-flop passes run as one
    /// batched sweep over the shared cone plans.
    #[must_use]
    pub fn with_analysis(analysis: EppAnalysis<'c>) -> Self {
        let circuit = analysis.circuit();
        let nffs = circuit.num_dffs();
        let mut po_arrival = vec![0.0; nffs];
        let mut ff_arrival = vec![vec![0.0; nffs]; nffs];
        let pool = WorkspacePool::new();
        let sweep = analysis.sweep_sites_with(circuit.dffs(), PolarityMode::Tracked, 1, &pool);
        for (fi, site) in sweep.iter().enumerate() {
            let mut po_arr = Vec::new();
            for p in site.per_point() {
                match p.point {
                    ObservePoint::PrimaryOutput(_) => po_arr.push(p.p_arrival()),
                    ObservePoint::FlipFlop { dff, .. } => {
                        let gi = circuit
                            .dffs()
                            .iter()
                            .position(|&d| d == dff)
                            .expect("observe point names a real dff");
                        ff_arrival[fi][gi] = p.p_arrival();
                    }
                }
            }
            po_arrival[fi] = combine_sensitization(po_arr);
        }
        MultiCycleEpp {
            circuit,
            po_arrival,
            ff_arrival,
            analysis,
        }
    }

    /// The underlying single-cycle analysis.
    #[must_use]
    pub fn single_cycle(&self) -> &EppAnalysis<'c> {
        &self.analysis
    }

    /// Cumulative PO-observation probability of an SEU at `site` over
    /// `cycles` clock cycles (cycle 0 included).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is 0 or `site` out of range.
    #[must_use]
    pub fn site(&self, site: NodeId, cycles: usize) -> MultiCycleResult {
        assert!(cycles > 0, "at least the SEU cycle itself");
        let nffs = self.circuit.num_dffs();
        let pool = WorkspacePool::new();
        let frame0_sweep = self
            .analysis
            .sweep_sites_with(&[site], PolarityMode::Tracked, 1, &pool);
        let frame0 = frame0_sweep.get(0);
        let mut po_arr = Vec::new();
        let mut corruption = vec![0.0f64; nffs];
        for p in frame0.per_point() {
            match p.point {
                ObservePoint::PrimaryOutput(_) => po_arr.push(p.p_arrival()),
                ObservePoint::FlipFlop { dff, .. } => {
                    let gi = self
                        .circuit
                        .dffs()
                        .iter()
                        .position(|&d| d == dff)
                        .expect("observe point names a real dff");
                    corruption[gi] = p.p_arrival();
                }
            }
        }
        let obs0 = combine_sensitization(po_arr);
        let mut miss = 1.0 - obs0;
        let mut cumulative = vec![1.0 - miss];
        for _ in 1..cycles {
            // Probability some corrupted FF surfaces at a PO this cycle.
            let obs_k = combine_sensitization(
                corruption
                    .iter()
                    .zip(&self.po_arrival)
                    .map(|(&c, &o)| c * o),
            );
            miss *= 1.0 - obs_k;
            cumulative.push(1.0 - miss);
            // Next-cycle corruption.
            let mut next = vec![0.0f64; nffs];
            for (gi, slot) in next.iter_mut().enumerate() {
                *slot = combine_sensitization(
                    corruption
                        .iter()
                        .enumerate()
                        .map(|(fi, &c)| c * self.ff_arrival[fi][gi]),
                );
            }
            corruption = next;
        }
        MultiCycleResult {
            site,
            cumulative,
            residual_corruption: corruption,
        }
    }
}

/// Ground truth for the multi-cycle observation probability by
/// differential sequential simulation: inject the SEU in cycle 0 and
/// report, per cycle, the cumulative fraction of runs where any primary
/// output has differed so far.
///
/// # Errors
///
/// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
/// simulated.
///
/// # Panics
///
/// Panics if `cycles` or `runs` is 0.
pub fn multi_cycle_monte_carlo(
    circuit: &Circuit,
    site: NodeId,
    cycles: usize,
    runs: u64,
    seed: u64,
) -> Result<Vec<f64>, ser_netlist::NetlistError> {
    assert!(cycles > 0, "at least the SEU cycle");
    assert!(runs > 0, "at least one run");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut observed = vec![0u64; cycles];
    let mut done = 0u64;
    while done < runs {
        let lanes = (runs - done).min(64) as u32;
        let valid = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        let mut good = SeqSim::new(circuit)?;
        let mut faulty = SeqSim::new(circuit)?;
        // Random initial state shared by both machines.
        let init: Vec<u64> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
        good.set_state(&init);
        faulty.set_state(&init);
        let mut seen = 0u64;
        // `cycle` both indexes `observed` and drives the SEU-at-cycle-0
        // branch; keep the index form.
        #[allow(clippy::needless_range_loop)]
        for cycle in 0..cycles {
            let pis: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
            let gv = good.step(&pis);
            let fv = if cycle == 0 {
                // The SEU: flip the site in every lane during cycle 0.
                faulty.step_with_seu(&pis, &[(site, !0u64)])
            } else {
                faulty.step(&pis)
            };
            for &po in circuit.outputs() {
                seen |= gv[po.index()] ^ fv[po.index()];
            }
            observed[cycle] += u64::from((seen & valid).count_ones());
        }
        done += u64::from(lanes);
    }
    Ok(observed
        .into_iter()
        .map(|o| o as f64 / runs as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn sp_for(c: &Circuit) -> SpVector {
        IndependentSp::new()
            .compute(c, &InputProbs::default())
            .unwrap()
    }

    /// A pipeline: x -> u -> DFF q -> y (PO). The error on `u` is never
    /// seen in cycle 0 (no combinational PO path) and always seen in
    /// cycle 1.
    const PIPE: &str = "
INPUT(x)
OUTPUT(y)
u = NOT(x)
q = DFF(u)
y = NOT(q)
";

    #[test]
    fn pipeline_delays_observation_one_cycle() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let u = c.find("u").unwrap();
        let r = mc.site(u, 3);
        assert_eq!(r.cumulative[0], 0.0, "no combinational path to y");
        assert_eq!(r.cumulative[1], 1.0, "latched error surfaces next cycle");
        assert_eq!(r.cumulative[2], 1.0);
        assert_eq!(r.site, u);
    }

    #[test]
    fn pipeline_matches_simulation() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let analytic = MultiCycleEpp::new(&c, sp_for(&c)).unwrap().site(u, 3);
        let sim = multi_cycle_monte_carlo(&c, u, 3, 4096, 7).unwrap();
        for (a, s) in analytic.cumulative.iter().zip(&sim) {
            assert!((a - s).abs() < 0.05, "analytic {a} vs sim {s}");
        }
    }

    #[test]
    fn masked_feedback_decays() {
        // q = DFF(d); d = AND(q, x); y = BUF(q): a corrupted q has a 50%
        // chance per cycle of being masked by x before re-latching.
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nd = AND(q, x)\ny = BUF(q)\n",
            "decay",
        )
        .unwrap();
        let q = c.find("q").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(q, 4);
        // q is itself PO-visible through y immediately.
        assert_eq!(r.cumulative[0], 1.0);
        // Residual corruption decays geometrically (0.5 per cycle).
        assert!(
            r.residual_corruption[0] < 0.2,
            "{:?}",
            r.residual_corruption
        );
    }

    #[test]
    fn combinational_circuit_single_frame_consistency() {
        // With no flip-flops, every cycle after 0 adds nothing.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "comb").unwrap();
        let a = c.find("a").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(a, 3);
        assert!((r.cumulative[0] - 0.5).abs() < 1e-12);
        assert_eq!(r.cumulative[0], r.cumulative[2]);
        assert!(r.residual_corruption.is_empty());
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let s1 = multi_cycle_monte_carlo(&c, u, 2, 1000, 5).unwrap();
        let s2 = multi_cycle_monte_carlo(&c, u, 2, 1000, 5).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn cumulative_is_monotone() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq1 = DFF(d1)\nq2 = DFF(q1)\nd1 = XOR(x, q2)\ny = AND(q2, x)\n",
            "loop",
        )
        .unwrap();
        let d1 = c.find("d1").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(d1, 6);
        for w in r.cumulative.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "cumulative must not decrease: {:?}",
                r.cumulative
            );
        }
    }
}
