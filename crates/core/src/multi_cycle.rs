//! Multi-cycle (sequential) error propagation — an extension beyond the
//! paper's single-cycle analysis.
//!
//! The paper counts an error as "observed" once it reaches a primary
//! output or is latched by a flip-flop. A latched error, however, may
//! surface at a primary output only cycles later (or be logically
//! masked and vanish). This module follows the error through time two
//! ways:
//!
//! - [`MultiCycleEpp`] — an analytical frame-expansion built from the
//!   one-pass EPP kernel: per-flip-flop corruption probabilities are
//!   propagated through a (FF → FF, FF → PO) arrival matrix computed by
//!   running the paper's algorithm with each flip-flop as the error
//!   site. Corrupted flip-flops are treated as independent, and error
//!   polarity is dropped across frames, so this is an approximation —
//!   cross-checked by the simulator below.
//! - [`multi_cycle_monte_carlo`] — ground truth by differential
//!   sequential simulation with a fixed run count, and
//!   [`multi_cycle_monte_carlo_sequential`] — the same simulation under
//!   Mendo's inverse-binomial stopping rule, spending runs until the
//!   final-cycle estimate meets a normalized error target.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ser_netlist::{CancelCause, CancelToken, Circuit, NodeId, ObservePoint};
use ser_sim::SeqSim;
use ser_sp::SpVector;

use crate::engine::{combine_sensitization, EppAnalysis, PolarityMode, WorkspacePool};

/// Analytical multi-cycle observation probabilities.
///
/// Owns its circuit through the underlying [`EppAnalysis`]; no lifetime
/// parameter, freely movable across threads.
#[derive(Debug, Clone)]
pub struct MultiCycleEpp {
    /// `po_arrival[f]`: combined PO arrival probability when FF `f`'s
    /// output is the error site.
    po_arrival: Vec<f64>,
    /// `ff_arrival[f][g]`: arrival probability at FF `g`'s D pin when FF
    /// `f`'s output is the error site.
    ff_arrival: Vec<Vec<f64>>,
    analysis: EppAnalysis,
}

/// Per-cycle cumulative observation probabilities for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCycleResult {
    /// The error site.
    pub site: NodeId,
    /// `cumulative[k]`: probability the error was seen at a primary
    /// output within the first `k + 1` cycles (cycle 0 is the SEU
    /// cycle).
    pub cumulative: Vec<f64>,
    /// Residual per-flip-flop corruption probability after the last
    /// analyzed cycle (diagnostic: how much error is still "in flight").
    pub residual_corruption: Vec<f64>,
}

impl MultiCycleEpp {
    /// Compiles the frame-expansion tables: one EPP pass per flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
    /// topologically ordered.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not cover the circuit.
    pub fn new(
        circuit: impl Into<Arc<Circuit>>,
        sp: SpVector,
    ) -> Result<Self, ser_netlist::NetlistError> {
        Ok(Self::with_analysis(EppAnalysis::new(circuit, sp)?))
    }

    /// Compiles the frame-expansion tables on top of an existing
    /// single-cycle analysis — e.g. one handed out by an
    /// [`AnalysisSession`](crate::AnalysisSession) via
    /// [`epp()`](crate::AnalysisSession::epp), so topological order and
    /// SP are not recomputed. The per-flip-flop passes run as one
    /// batched sweep over the shared cone plans.
    #[must_use]
    pub fn with_analysis(analysis: EppAnalysis) -> Self {
        let circuit = Arc::clone(analysis.circuit_arc());
        let nffs = circuit.num_dffs();
        let mut po_arrival = vec![0.0; nffs];
        let mut ff_arrival = vec![vec![0.0; nffs]; nffs];
        let pool = WorkspacePool::new();
        let sweep = analysis.sweep_sites_with(circuit.dffs(), PolarityMode::Tracked, 1, &pool);
        for (fi, site) in sweep.iter().enumerate() {
            let mut po_arr = Vec::new();
            for p in site.per_point() {
                match p.point {
                    ObservePoint::PrimaryOutput(_) => po_arr.push(p.p_arrival()),
                    ObservePoint::FlipFlop { dff, .. } => {
                        let gi = circuit
                            .dffs()
                            .iter()
                            .position(|&d| d == dff)
                            .expect("observe point names a real dff");
                        ff_arrival[fi][gi] = p.p_arrival();
                    }
                }
            }
            po_arrival[fi] = combine_sensitization(po_arr);
        }
        MultiCycleEpp {
            po_arrival,
            ff_arrival,
            analysis,
        }
    }

    /// The underlying single-cycle analysis.
    #[must_use]
    pub fn single_cycle(&self) -> &EppAnalysis {
        &self.analysis
    }

    /// Cumulative PO-observation probability of an SEU at `site` over
    /// `cycles` clock cycles (cycle 0 included).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is 0 or `site` out of range.
    #[must_use]
    pub fn site(&self, site: NodeId, cycles: usize) -> MultiCycleResult {
        assert!(cycles > 0, "at least the SEU cycle itself");
        let circuit = self.analysis.circuit();
        let nffs = circuit.num_dffs();
        let pool = WorkspacePool::new();
        let frame0_sweep = self
            .analysis
            .sweep_sites_with(&[site], PolarityMode::Tracked, 1, &pool);
        let frame0 = frame0_sweep.get(0);
        let mut po_arr = Vec::new();
        let mut corruption = vec![0.0f64; nffs];
        for p in frame0.per_point() {
            match p.point {
                ObservePoint::PrimaryOutput(_) => po_arr.push(p.p_arrival()),
                ObservePoint::FlipFlop { dff, .. } => {
                    let gi = circuit
                        .dffs()
                        .iter()
                        .position(|&d| d == dff)
                        .expect("observe point names a real dff");
                    corruption[gi] = p.p_arrival();
                }
            }
        }
        let obs0 = combine_sensitization(po_arr);
        let mut miss = 1.0 - obs0;
        let mut cumulative = vec![1.0 - miss];
        for _ in 1..cycles {
            // Probability some corrupted FF surfaces at a PO this cycle.
            let obs_k = combine_sensitization(
                corruption
                    .iter()
                    .zip(&self.po_arrival)
                    .map(|(&c, &o)| c * o),
            );
            miss *= 1.0 - obs_k;
            cumulative.push(1.0 - miss);
            // Next-cycle corruption.
            let mut next = vec![0.0f64; nffs];
            for (gi, slot) in next.iter_mut().enumerate() {
                *slot = combine_sensitization(
                    corruption
                        .iter()
                        .enumerate()
                        .map(|(fi, &c)| c * self.ff_arrival[fi][gi]),
                );
            }
            corruption = next;
        }
        MultiCycleResult {
            site,
            cumulative,
            residual_corruption: corruption,
        }
    }
}

/// Ground truth for the multi-cycle observation probability by
/// differential sequential simulation: inject the SEU in cycle 0 and
/// report, per cycle, the cumulative fraction of runs where any primary
/// output has differed so far.
///
/// # Errors
///
/// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
/// simulated.
///
/// # Panics
///
/// Panics if `cycles` or `runs` is 0.
pub fn multi_cycle_monte_carlo(
    circuit: impl Into<Arc<Circuit>>,
    site: NodeId,
    cycles: usize,
    runs: u64,
    seed: u64,
) -> Result<Vec<f64>, ser_netlist::NetlistError> {
    assert!(runs > 0, "at least one run");
    let est = expect_uncancelled(run_multi_cycle_mc(
        circuit.into(),
        site,
        cycles,
        runs,
        None,
        seed,
        None,
        None,
    ))?;
    Ok(est.cumulative)
}

/// Maps the cancellable core's abort back to a plain simulation error
/// for the token-less entry points, where cancellation is impossible.
fn expect_uncancelled(
    result: Result<MultiCycleMcEstimate, MultiCycleMcAbort>,
) -> Result<MultiCycleMcEstimate, ser_netlist::NetlistError> {
    result.map_err(|e| match e {
        MultiCycleMcAbort::Simulation(e) => e,
        MultiCycleMcAbort::Cancelled(_) => {
            unreachable!("a run without a token cannot be cancelled")
        }
    })
}

/// Result of a sequential-stopping multi-cycle Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCycleMcEstimate {
    /// `cumulative[k]`: estimated probability the error was seen at a
    /// primary output within the first `k + 1` cycles. When the
    /// stopping rule fired, the final cycle carries the debiased
    /// inverse-binomial estimate and earlier cycles are scaled by the
    /// same factor (keeping the vector consistent and monotone).
    pub cumulative: Vec<f64>,
    /// Differential simulation runs actually spent.
    pub runs: u64,
    /// `true` when the stopping rule reached its success target;
    /// `false` when the `max_runs` cap cut the run short (plain
    /// frequencies are reported in that case).
    pub stopped_by_rule: bool,
}

/// Why a cancellable multi-cycle Monte-Carlo run ended without an
/// estimate.
#[derive(Debug)]
pub enum MultiCycleMcAbort {
    /// The circuit could not be simulated.
    Simulation(ser_netlist::NetlistError),
    /// The cancellation token tripped at an observation-block
    /// boundary; all partial counts were dropped.
    Cancelled(CancelCause),
}

impl std::fmt::Display for MultiCycleMcAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiCycleMcAbort::Simulation(e) => e.fmt(f),
            MultiCycleMcAbort::Cancelled(cause) => cause.fmt(f),
        }
    }
}

impl std::error::Error for MultiCycleMcAbort {}

impl From<ser_netlist::NetlistError> for MultiCycleMcAbort {
    fn from(e: ser_netlist::NetlistError) -> Self {
        MultiCycleMcAbort::Simulation(e)
    }
}

impl From<CancelCause> for MultiCycleMcAbort {
    fn from(cause: CancelCause) -> Self {
        MultiCycleMcAbort::Cancelled(cause)
    }
}

/// [`multi_cycle_monte_carlo`] under Mendo's inverse-binomial stopping
/// rule (the same scheme as
/// [`SequentialMonteCarlo`](ser_sim::SequentialMonteCarlo), lifted from
/// single-cycle `P_sensitized` to the multi-cycle observation
/// probability): instead of a fixed run count, simulate 64-run blocks
/// until `k = ⌈1/ε²⌉ + 2` runs have shown the error at a primary output
/// within `cycles` cycles — so rarely-observed sites automatically get
/// more runs and strongly-observed sites stop almost immediately, with
/// normalized MSE on the final-cycle estimate bounded by ≈ `ε²`
/// regardless of the unknown probability.
///
/// The stop is checked at block granularity and a hard `max_runs` cap
/// bounds never-observed sites, exactly as in the single-cycle rule.
///
/// # Errors
///
/// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
/// simulated.
///
/// # Panics
///
/// Panics if `cycles` or `max_runs` is 0 or `target_error` is outside
/// `(0, 1)`.
pub fn multi_cycle_monte_carlo_sequential(
    circuit: impl Into<Arc<Circuit>>,
    site: NodeId,
    cycles: usize,
    target_error: f64,
    max_runs: u64,
    seed: u64,
) -> Result<MultiCycleMcEstimate, ser_netlist::NetlistError> {
    assert!(
        target_error.is_finite() && target_error > 0.0 && target_error < 1.0,
        "target error {target_error} outside (0,1)"
    );
    assert!(max_runs > 0, "at least one run");
    let needed = (1.0 / (target_error * target_error)).ceil() as u64 + 2;
    expect_uncancelled(run_multi_cycle_mc(
        circuit.into(),
        site,
        cycles,
        max_runs,
        Some(needed),
        seed,
        None,
        None,
    ))
}

/// [`multi_cycle_monte_carlo_sequential`] with a progress observer:
/// after every 64-run block, `observer(runs_done, observed_final)`
/// reports the runs spent so far and the final-cycle success count —
/// the raw tick a service throttles (e.g. at doubling thresholds) into
/// wire `progress` frames. The observer is pure telemetry: the RNG
/// stream, stopping decisions, and estimate are bit-identical to the
/// unobserved call.
///
/// # Errors
///
/// Returns [`ser_netlist::NetlistError`] if the circuit cannot be
/// simulated.
///
/// # Panics
///
/// Panics if `cycles` or `max_runs` is 0 or `target_error` is outside
/// `(0, 1)`.
pub fn multi_cycle_monte_carlo_sequential_observed(
    circuit: impl Into<Arc<Circuit>>,
    site: NodeId,
    cycles: usize,
    target_error: f64,
    max_runs: u64,
    seed: u64,
    observer: &mut dyn FnMut(u64, u64),
) -> Result<MultiCycleMcEstimate, ser_netlist::NetlistError> {
    assert!(
        target_error.is_finite() && target_error > 0.0 && target_error < 1.0,
        "target error {target_error} outside (0,1)"
    );
    assert!(max_runs > 0, "at least one run");
    let needed = (1.0 / (target_error * target_error)).ceil() as u64 + 2;
    expect_uncancelled(run_multi_cycle_mc(
        circuit.into(),
        site,
        cycles,
        max_runs,
        Some(needed),
        seed,
        Some(observer),
        None,
    ))
}

/// [`multi_cycle_monte_carlo_sequential_observed`] with a cooperative
/// [`CancelToken`], polled at every Mendo observation-block boundary
/// (the same 64-run granularity the observer ticks at). A trip aborts
/// with [`MultiCycleMcAbort::Cancelled`] and drops all partial counts;
/// with a live token the estimate is **bit-identical** to the
/// token-less call.
///
/// # Errors
///
/// [`MultiCycleMcAbort::Simulation`] if the circuit cannot be
/// simulated, [`MultiCycleMcAbort::Cancelled`] when `cancel` trips
/// before the stopping rule (or the `max_runs` cap) finishes the run.
///
/// # Panics
///
/// Panics if `cycles` or `max_runs` is 0 or `target_error` is outside
/// `(0, 1)`.
// The token-less signature plus the one cancel argument; bundling
// would break the mirror between the two entry points.
#[allow(clippy::too_many_arguments)]
pub fn multi_cycle_monte_carlo_sequential_cancellable(
    circuit: impl Into<Arc<Circuit>>,
    site: NodeId,
    cycles: usize,
    target_error: f64,
    max_runs: u64,
    seed: u64,
    observer: &mut dyn FnMut(u64, u64),
    cancel: Option<&CancelToken>,
) -> Result<MultiCycleMcEstimate, MultiCycleMcAbort> {
    assert!(
        target_error.is_finite() && target_error > 0.0 && target_error < 1.0,
        "target error {target_error} outside (0,1)"
    );
    assert!(max_runs > 0, "at least one run");
    let needed = (1.0 / (target_error * target_error)).ceil() as u64 + 2;
    run_multi_cycle_mc(
        circuit.into(),
        site,
        cycles,
        max_runs,
        Some(needed),
        seed,
        Some(observer),
        cancel,
    )
}

/// The shared differential-simulation core: runs 64-lane blocks up to
/// `max_runs`, stopping early once the final-cycle success count
/// reaches `needed` (when set). Both simulators are compiled once,
/// sharing one circuit handle, and re-seeded per block.
#[allow(clippy::too_many_arguments)]
fn run_multi_cycle_mc(
    circuit: Arc<Circuit>,
    site: NodeId,
    cycles: usize,
    max_runs: u64,
    needed: Option<u64>,
    seed: u64,
    mut observer: Option<&mut dyn FnMut(u64, u64)>,
    cancel: Option<&CancelToken>,
) -> Result<MultiCycleMcEstimate, MultiCycleMcAbort> {
    assert!(cycles > 0, "at least the SEU cycle");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut observed = vec![0u64; cycles];
    let mut done = 0u64;
    let mut good = SeqSim::new(Arc::clone(&circuit))?;
    let mut faulty = SeqSim::new(Arc::clone(&circuit))?;
    while done < max_runs && needed.is_none_or(|k| observed[cycles - 1] < k) {
        if let Some(token) = cancel {
            token.check()?;
        }
        let lanes = (max_runs - done).min(64) as u32;
        let valid = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        // Random initial state shared by both machines.
        let init: Vec<u64> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
        good.set_state(&init);
        faulty.set_state(&init);
        let mut seen = 0u64;
        // `cycle` both indexes `observed` and drives the SEU-at-cycle-0
        // branch; keep the index form.
        #[allow(clippy::needless_range_loop)]
        for cycle in 0..cycles {
            let pis: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
            let gv = good.step(&pis);
            let fv = if cycle == 0 {
                // The SEU: flip the site in every lane during cycle 0.
                faulty.step_with_seu(&pis, &[(site, !0u64)])
            } else {
                faulty.step(&pis)
            };
            for &po in circuit.outputs() {
                seen |= gv[po.index()] ^ fv[po.index()];
            }
            observed[cycle] += u64::from((seen & valid).count_ones());
        }
        done += u64::from(lanes);
        if let Some(obs) = observer.as_deref_mut() {
            obs(done, observed[cycles - 1]);
        }
    }
    let final_successes = observed[cycles - 1];
    let stopped_by_rule = needed.is_some_and(|k| final_successes >= k);
    let v = done as f64;
    // When the rule stops on its own, debias the final cycle with the
    // inverse-binomial estimator and scale the earlier cycles by the
    // same factor, mirroring `SequentialMonteCarlo`'s per-point scaling.
    let scale = if stopped_by_rule && done > 1 && final_successes > 0 {
        let debiased = (final_successes - 1) as f64 / (done - 1) as f64;
        debiased / (final_successes as f64 / v)
    } else {
        1.0
    };
    Ok(MultiCycleMcEstimate {
        cumulative: observed.into_iter().map(|o| o as f64 / v * scale).collect(),
        runs: done,
        stopped_by_rule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{IndependentSp, InputProbs, SpEngine};

    fn sp_for(c: &Circuit) -> SpVector {
        IndependentSp::new()
            .compute(c, &InputProbs::default())
            .unwrap()
    }

    /// A pipeline: x -> u -> DFF q -> y (PO). The error on `u` is never
    /// seen in cycle 0 (no combinational PO path) and always seen in
    /// cycle 1.
    const PIPE: &str = "
INPUT(x)
OUTPUT(y)
u = NOT(x)
q = DFF(u)
y = NOT(q)
";

    #[test]
    fn pipeline_delays_observation_one_cycle() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let u = c.find("u").unwrap();
        let r = mc.site(u, 3);
        assert_eq!(r.cumulative[0], 0.0, "no combinational path to y");
        assert_eq!(r.cumulative[1], 1.0, "latched error surfaces next cycle");
        assert_eq!(r.cumulative[2], 1.0);
        assert_eq!(r.site, u);
    }

    #[test]
    fn pipeline_matches_simulation() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let analytic = MultiCycleEpp::new(&c, sp_for(&c)).unwrap().site(u, 3);
        let sim = multi_cycle_monte_carlo(&c, u, 3, 4096, 7).unwrap();
        for (a, s) in analytic.cumulative.iter().zip(&sim) {
            assert!((a - s).abs() < 0.05, "analytic {a} vs sim {s}");
        }
    }

    #[test]
    fn masked_feedback_decays() {
        // q = DFF(d); d = AND(q, x); y = BUF(q): a corrupted q has a 50%
        // chance per cycle of being masked by x before re-latching.
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nd = AND(q, x)\ny = BUF(q)\n",
            "decay",
        )
        .unwrap();
        let q = c.find("q").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(q, 4);
        // q is itself PO-visible through y immediately.
        assert_eq!(r.cumulative[0], 1.0);
        // Residual corruption decays geometrically (0.5 per cycle).
        assert!(
            r.residual_corruption[0] < 0.2,
            "{:?}",
            r.residual_corruption
        );
    }

    #[test]
    fn combinational_circuit_single_frame_consistency() {
        // With no flip-flops, every cycle after 0 adds nothing.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "comb").unwrap();
        let a = c.find("a").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(a, 3);
        assert!((r.cumulative[0] - 0.5).abs() < 1e-12);
        assert_eq!(r.cumulative[0], r.cumulative[2]);
        assert!(r.residual_corruption.is_empty());
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let s1 = multi_cycle_monte_carlo(&c, u, 2, 1000, 5).unwrap();
        let s2 = multi_cycle_monte_carlo(&c, u, 2, 1000, 5).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn sequential_rule_stops_early_and_stays_accurate() {
        // The pipeline error is always observed by cycle 1: the rule
        // needs k = ceil(1/0.01)+2 = 102 successes, i.e. two 64-run
        // blocks, far under the cap.
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let est = multi_cycle_monte_carlo_sequential(&c, u, 3, 0.1, 1 << 20, 7).unwrap();
        assert!(est.stopped_by_rule);
        assert!(est.runs <= 256, "stopped after {} runs", est.runs);
        assert_eq!(est.cumulative.len(), 3);
        assert!(
            (est.cumulative[1] - 1.0).abs() < 0.05,
            "{:?}",
            est.cumulative
        );
        // Deterministic per seed.
        assert_eq!(
            est,
            multi_cycle_monte_carlo_sequential(&c, u, 3, 0.1, 1 << 20, 7).unwrap()
        );
        // Monotone after the debias scaling.
        for w in est.cumulative.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn sequential_observer_ticks_without_perturbing_the_estimate() {
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let plain = multi_cycle_monte_carlo_sequential(&c, u, 3, 0.1, 1 << 20, 7).unwrap();
        let mut ticks: Vec<(u64, u64)> = Vec::new();
        let observed = multi_cycle_monte_carlo_sequential_observed(
            &c,
            u,
            3,
            0.1,
            1 << 20,
            7,
            &mut |runs, seen| ticks.push((runs, seen)),
        )
        .unwrap();
        assert_eq!(observed, plain, "the observer is pure telemetry");
        assert!(!ticks.is_empty(), "one tick per 64-run block");
        assert_eq!(
            ticks.last().unwrap().0,
            observed.runs,
            "final tick is the total"
        );
        for w in ticks.windows(2) {
            assert!(w[0].0 < w[1].0, "run counts strictly increase");
            assert!(w[0].1 <= w[1].1, "success counts never decrease");
        }
    }

    #[test]
    fn sequential_rule_caps_never_observed_sites() {
        // A site with no path to any PO is never observed: only the cap
        // terminates the run, and the plain frequency (0) is reported.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let u = c.find("u").unwrap();
        let est = multi_cycle_monte_carlo_sequential(&c, u, 2, 0.2, 512, 3).unwrap();
        assert!(!est.stopped_by_rule);
        assert_eq!(est.runs, 512, "ran to the cap");
        assert!(est.cumulative.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn sequential_rule_matches_fixed_count_distributionally() {
        // Same RNG stream: with the success target effectively disabled
        // the sequential core IS the fixed-count core.
        let c = parse_bench(PIPE, "pipe").unwrap();
        let u = c.find("u").unwrap();
        let fixed = multi_cycle_monte_carlo(&c, u, 3, 256, 11).unwrap();
        let seq = multi_cycle_monte_carlo_sequential(&c, u, 3, 0.9, 256, 11).unwrap();
        // 0.9 target -> k = 4 successes: stops in the first block; the
        // first block of the fixed run saw the same patterns, so the
        // raw frequencies agree up to the debias factor.
        assert!(seq.stopped_by_rule);
        assert!(seq.runs <= 64);
        assert!((seq.cumulative[2] - fixed[2]).abs() < 0.2);
    }

    #[test]
    fn cumulative_is_monotone() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq1 = DFF(d1)\nq2 = DFF(q1)\nd1 = XOR(x, q2)\ny = AND(q2, x)\n",
            "loop",
        )
        .unwrap();
        let d1 = c.find("d1").unwrap();
        let mc = MultiCycleEpp::new(&c, sp_for(&c)).unwrap();
        let r = mc.site(d1, 6);
        for w in r.cumulative.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "cumulative must not decrease: {:?}",
                r.cumulative
            );
        }
    }
}
