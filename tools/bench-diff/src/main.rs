//! `bench-diff` — guard rail for the committed `BENCH_*.json` perf
//! records.
//!
//! The bench binaries emit their JSON by hand (no serde in the tree),
//! so a formatting slip would silently corrupt the perf trajectory the
//! repo tracks commit over commit. CI runs `bench-diff check` over
//! every committed BENCH file and fails the build on malformed JSON or
//! a record missing its required shape. `bench-diff diff old new`
//! additionally reports per-circuit metric movement between two
//! versions of the same bench file (useful in review).
//!
//! ```text
//! bench-diff check BENCH_sweep.json BENCH_service.json
//! bench-diff diff /tmp/old.json BENCH_sweep.json
//! ```

#![forbid(unsafe_code)]
use std::fmt;
use std::process::ExitCode;

/// A parsed JSON value — the subset of shapes the BENCH files use,
/// which is full JSON minus numbers outside `f64`.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// Recursive-descent JSON parser (strict: no trailing garbage, no
/// trailing commas, no NaN/Inf — exactly what a well-formed BENCH
/// file may contain).
struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Nesting guard: BENCH files are ~3 levels deep; anything past
    /// this is corrupt input, not data.
    depth: usize,
}

impl<'a> Parser<'a> {
    const MAX_DEPTH: usize = 32;

    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().peekable(),
            depth: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected '{want}', found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn literal(&mut self, rest: &str, value: Json) -> Result<Json, String> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        while matches!(
            self.chars.peek(),
            Some('0'..='9' | '-' | '+' | '.' | 'e' | 'E')
        ) {
            text.push(self.chars.next().expect("peeked"));
        }
        let n: f64 = text.parse().map_err(|_| format!("bad number '{text}'"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Number(n))
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= Self::MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.chars.peek() {
            None => Err("unexpected end of input".into()),
            Some('"') => Ok(Json::String(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some('0'..='9' | '-') => self.number(),
            Some('[') => {
                self.chars.next();
                self.depth += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.chars.peek() == Some(&']') {
                        if !items.is_empty() {
                            return Err("trailing comma in array".into());
                        }
                        self.chars.next();
                        break;
                    }
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some(']') => break,
                        other => return Err(format!("expected ',' or ']', found {other:?}")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Array(items))
            }
            Some('{') => {
                self.chars.next();
                self.depth += 1;
                let mut fields: Vec<(String, Json)> = Vec::new();
                loop {
                    self.skip_ws();
                    if self.chars.peek() == Some(&'}') {
                        if !fields.is_empty() {
                            return Err("trailing comma in object".into());
                        }
                        self.chars.next();
                        break;
                    }
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate key \"{key}\""));
                    }
                    self.skip_ws();
                    self.expect(':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some('}') => break,
                        other => return Err(format!("expected ',' or '}}', found {other:?}")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Object(fields))
            }
            Some(c) => Err(format!("unexpected character '{c}'")),
        }
    }
}

fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let value = p.value()?;
    p.skip_ws();
    if let Some(c) = p.chars.next() {
        return Err(format!("trailing content after document: '{c}'"));
    }
    Ok(value)
}

/// The shape every committed BENCH file must satisfy: a top-level
/// object with a `"bench"` name string and a non-empty `"results"`
/// array whose entries each name their `"circuit"` and carry at least
/// one numeric metric (directly or in a nested object).
fn validate(doc: &Json) -> Result<(), String> {
    let Json::Object(_) = doc else {
        return Err(format!("top level must be an object, found {doc}"));
    };
    match doc.get("bench") {
        Some(Json::String(name)) if !name.is_empty() => {}
        Some(other) => {
            return Err(format!(
                "\"bench\" must be a non-empty string, found {other}"
            ))
        }
        None => return Err("missing \"bench\" name".into()),
    }
    let results = match doc.get("results") {
        Some(Json::Array(items)) => items,
        Some(other) => return Err(format!("\"results\" must be an array, found {other}")),
        None => return Err("missing \"results\" array".into()),
    };
    if results.is_empty() {
        return Err("\"results\" is empty".into());
    }
    for (i, entry) in results.iter().enumerate() {
        let Json::Object(fields) = entry else {
            return Err(format!("results[{i}] must be an object, found {entry}"));
        };
        match entry.get("circuit") {
            Some(Json::String(name)) if !name.is_empty() => {}
            _ => return Err(format!("results[{i}] is missing its \"circuit\" name")),
        }
        let has_metric = fields.iter().any(|(_, v)| match v {
            Json::Number(_) => true,
            Json::Object(inner) => inner.iter().any(|(_, v)| matches!(v, Json::Number(_))),
            _ => false,
        });
        if !has_metric {
            return Err(format!("results[{i}] carries no numeric metric"));
        }
    }
    // Bench-specific per-result shape: the sweep record tracks the
    // suffix-shared arena footprint, the service record the
    // artifact-cache cold path; losing either silently would erase
    // that perf trajectory.
    let required: &[&str] = match doc.get("bench") {
        Some(Json::String(name)) if name == "sweep_throughput" => &[
            "arena_members",
            "arena_bytes",
            "whatif_resweep_ms",
            "whatif_dirty_site_fraction",
            "whatif_full_recompute_ms",
        ],
        Some(Json::String(name)) if name == "service_throughput" => &["cold_cached_sweep_ms"],
        _ => &[],
    };
    // Both throughput records must name the rule-core backend that
    // produced them: a speedup number without its kernel is
    // uninterpretable across hosts.
    if matches!(doc.get("bench"),
        Some(Json::String(name)) if name == "sweep_throughput" || name == "service_throughput")
    {
        match doc.get("kernel") {
            Some(Json::String(k)) if k == "avx2" || k == "scalar" => {}
            Some(other) => {
                return Err(format!(
                    "\"kernel\" must be \"avx2\" or \"scalar\", found {other}"
                ))
            }
            None => return Err("missing \"kernel\" backend field".into()),
        }
    }
    for (i, entry) in results.iter().enumerate() {
        for field in required {
            match entry.get(field) {
                Some(Json::Number(_)) => {}
                _ => {
                    return Err(format!(
                        "results[{i}] is missing its numeric \"{field}\" metric"
                    ))
                }
            }
        }
    }
    // Bench-specific shape: the service record carries a TCP round-trip
    // section whose silent loss would drop the wire-cost trajectory.
    if doc.get("bench") == Some(&Json::String("service_throughput".into())) {
        let Some(tcp) = doc.get("tcp") else {
            return Err("service_throughput is missing its \"tcp\" section".into());
        };
        for field in [
            "round_trips_per_sec",
            "p50_us",
            "sweep_round_trip_ms",
            "cancel_latency_ms",
        ] {
            match tcp.get(field) {
                Some(Json::Number(_)) => {}
                _ => {
                    return Err(format!(
                        "\"tcp\" section is missing its numeric \"{field}\" metric"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Flattens one result entry's numeric metrics as `name` /
/// `outer.name` pairs for the diff report.
fn metrics(entry: &Json) -> Vec<(String, f64)> {
    let Json::Object(fields) = entry else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (key, value) in fields {
        match value {
            Json::Number(n) => out.push((key.clone(), *n)),
            Json::Object(inner) => {
                for (k, v) in inner {
                    if let Json::Number(n) = v {
                        out.push((format!("{key}.{k}"), *n));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn load(path: &str) -> Result<Json, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("{path}: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc)
}

fn run_check(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err("check: no files given".into());
    }
    for path in paths {
        let doc = load(path)?;
        let results = match doc.get("results") {
            Some(Json::Array(items)) => items.len(),
            _ => unreachable!("validated"),
        };
        println!("{path}: ok ({results} results)");
    }
    Ok(())
}

fn run_diff(old_path: &str, new_path: &str) -> Result<(), String> {
    let old = load(old_path)?;
    let new = load(new_path)?;
    let (Some(Json::Array(old_results)), Some(Json::Array(new_results))) =
        (old.get("results"), new.get("results"))
    else {
        unreachable!("validated");
    };
    for entry in new_results {
        let circuit = match entry.get("circuit") {
            Some(Json::String(name)) => name.clone(),
            _ => unreachable!("validated"),
        };
        let Some(before) = old_results
            .iter()
            .find(|e| e.get("circuit") == Some(&Json::String(circuit.clone())))
        else {
            println!("{circuit}: new circuit (no baseline)");
            continue;
        };
        let old_metrics = metrics(before);
        for (name, after) in metrics(entry) {
            match old_metrics.iter().find(|(n, _)| *n == name) {
                Some((_, b)) if *b != 0.0 => {
                    let delta = (after - b) / b * 100.0;
                    println!("{circuit}: {name} {b:.3} -> {after:.3} ({delta:+.1}%)");
                }
                Some((_, b)) => println!("{circuit}: {name} {b:.3} -> {after:.3}"),
                None => println!("{circuit}: {name} (new metric) = {after:.3}"),
            }
        }
    }
    // Top-level metric sections ("interleave", "tcp", ...) diff like
    // pseudo-circuits keyed by their field name.
    let Json::Object(new_fields) = &new else {
        unreachable!("validated");
    };
    for (key, value) in new_fields {
        if key == "results" || !matches!(value, Json::Object(_)) {
            continue;
        }
        let old_metrics = old.get(key).map(metrics).unwrap_or_default();
        for (name, after) in metrics(value) {
            match old_metrics.iter().find(|(n, _)| *n == name) {
                Some((_, b)) if *b != 0.0 => {
                    let delta = (after - b) / b * 100.0;
                    println!("{key}: {name} {b:.3} -> {after:.3} ({delta:+.1}%)");
                }
                Some((_, b)) => println!("{key}: {name} {b:.3} -> {after:.3}"),
                None => println!("{key}: {name} (new metric) = {after:.3}"),
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => run_check(rest),
        Some((cmd, rest)) if cmd == "diff" => match rest {
            [old, new] => run_diff(old, new),
            _ => Err("diff: expected exactly two files".into()),
        },
        // Bare file arguments behave like `check` (the CI invocation).
        Some(_) => run_check(&args),
        None => Err("usage: bench-diff check <files...> | bench-diff diff <old> <new>".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "bench": "sweep_throughput",
      "kernel": "avx2",
      "unit_note": "latencies in microseconds",
      "results": [
        {"circuit": "s953", "nodes": 440, "plan_build_ms": 2.4,
         "arena_members": 9000, "arena_bytes": 120000,
         "whatif_resweep_ms": 1.2, "whatif_dirty_site_fraction": 0.41,
         "whatif_full_recompute_ms": 8.5,
         "reference": {"sites_per_sec": 147038.2, "p50_us": 4.4}}
      ]
    }"#;

    #[test]
    fn accepts_a_well_formed_bench_file() {
        let doc = parse(GOOD).unwrap();
        validate(&doc).unwrap();
        let Json::Array(results) = doc.get("results").unwrap() else {
            panic!("results array");
        };
        let m = metrics(&results[0]);
        assert!(m.contains(&("nodes".into(), 440.0)));
        assert!(m.contains(&("reference.sites_per_sec".into(), 147038.2)));
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"bench\": }",
            "{\"bench\": \"x\", \"results\": [}",
            "{\"bench\": \"x\"} trailing",
            "{\"bench\": \"x\", \"results\": [1,]}",
            "{\"a\": 1, \"a\": 2}",
            "{\"n\": 1e999}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        for bad in [
            "[]",
            "{\"results\": []}",
            "{\"bench\": \"x\"}",
            "{\"bench\": \"x\", \"results\": []}",
            "{\"bench\": \"x\", \"results\": [42]}",
            "{\"bench\": \"x\", \"results\": [{\"nodes\": 1}]}",
            "{\"bench\": \"x\", \"results\": [{\"circuit\": \"c\"}]}",
            "{\"bench\": 7, \"results\": [{\"circuit\": \"c\", \"nodes\": 1}]}",
        ] {
            let Ok(doc) = parse(bad) else { continue };
            assert!(validate(&doc).is_err(), "accepted shape: {bad}");
        }
    }

    #[test]
    fn sweep_record_requires_its_arena_metrics() {
        // The committed sweep record must carry the suffix-shared arena
        // footprint per circuit.
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "scalar", "results": [{"circuit": "c", "nodes": 1}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("arena_members"));
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "scalar", "results": [{"circuit": "c", "arena_members": 5}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("arena_bytes"));
        // The incremental what-if record rides along: losing it would
        // silently drop the resweep-vs-full trajectory.
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "scalar", "results": [{"circuit": "c", "arena_members": 5, "arena_bytes": 80}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("whatif_resweep_ms"));
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "scalar", "results": [{"circuit": "c", "arena_members": 5, "arena_bytes": 80, "whatif_resweep_ms": 1.0}]}"#,
        )
        .unwrap();
        assert!(validate(&doc)
            .unwrap_err()
            .contains("whatif_dirty_site_fraction"));
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "scalar", "results": [{"circuit": "c", "arena_members": 5, "arena_bytes": 80, "whatif_resweep_ms": 1.0, "whatif_dirty_site_fraction": 0.4, "whatif_full_recompute_ms": 3.0}]}"#,
        )
        .unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn throughput_records_require_their_kernel_backend() {
        // Missing: rejected, for both throughput bench kinds.
        let doc = parse(
            r#"{"bench": "sweep_throughput", "results": [{"circuit": "c", "arena_members": 5, "arena_bytes": 80}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("kernel"));
        let doc = parse(
            r#"{"bench": "service_throughput", "results": [{"circuit": "c", "cold_cached_sweep_ms": 1.0}], "tcp": {"round_trips_per_sec": 1.0, "p50_us": 1.0, "sweep_round_trip_ms": 1.0, "cancel_latency_ms": 1.0}}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("kernel"));
        // An unknown backend name: rejected.
        let doc = parse(
            r#"{"bench": "sweep_throughput", "kernel": "sse9", "results": [{"circuit": "c", "arena_members": 5, "arena_bytes": 80}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("kernel"));
        // Other bench names carry no kernel obligation.
        let doc = parse(r#"{"bench": "x", "results": [{"circuit": "c", "nodes": 1}]}"#).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn service_record_requires_its_tcp_section() {
        let base = r#""kernel": "avx2", "results": [{"circuit": "c", "nodes": 1, "cold_cached_sweep_ms": 1.5}]"#;
        // Without the tcp section (or with it incomplete): rejected.
        let doc = parse(&format!(r#"{{"bench": "service_throughput", {base}}}"#)).unwrap();
        assert!(validate(&doc).unwrap_err().contains("tcp"));
        let doc = parse(&format!(
            r#"{{"bench": "service_throughput", {base}, "tcp": {{"round_trips_per_sec": 9000.0}}}}"#
        ))
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("p50_us"));
        // Cancel latency is part of the contract: its silent loss would
        // drop the cancellation-responsiveness trajectory.
        let doc = parse(&format!(
            r#"{{"bench": "service_throughput", {base}, "tcp": {{"round_trips_per_sec": 9000.0, "p50_us": 110.0, "sweep_round_trip_ms": 2.1}}}}"#
        ))
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("cancel_latency_ms"));
        // Complete: accepted.
        let doc = parse(&format!(
            r#"{{"bench": "service_throughput", {base}, "tcp": {{"circuit": "c", "round_trips_per_sec": 9000.0, "p50_us": 110.0, "sweep_round_trip_ms": 2.1, "cancel_latency_ms": 0.4}}}}"#
        ))
        .unwrap();
        validate(&doc).unwrap();
        // The cached-cold metric is mandatory per service result too.
        let doc = parse(
            r#"{"bench": "service_throughput", "kernel": "avx2", "results": [{"circuit": "c", "nodes": 1}], "tcp": {"round_trips_per_sec": 9000.0, "p50_us": 110.0, "sweep_round_trip_ms": 2.1, "cancel_latency_ms": 0.4}}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("cold_cached_sweep_ms"));
        // Other bench names carry no such obligation.
        let doc = parse(r#"{"bench": "x", "results": [{"circuit": "c", "nodes": 1}]}"#).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn the_committed_bench_files_validate() {
        // Run from the workspace root by cargo; both records must stay
        // well-formed — this is the same gate CI applies.
        for path in ["../../BENCH_sweep.json", "../../BENCH_service.json"] {
            let src = std::fs::read_to_string(path).expect("committed bench file");
            let doc = parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
            validate(&doc).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
    }

    #[test]
    fn string_escapes_and_unicode() {
        let doc = parse(r#"{"bench": "a\nbA", "results": [{"circuit": "c", "n": 1}]}"#).unwrap();
        assert_eq!(doc.get("bench"), Some(&Json::String("a\nbA".into())));
    }
}
