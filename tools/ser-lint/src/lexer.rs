//! A lossless Rust lexer — just enough of the language to make the
//! rule engine sound.
//!
//! The rules in this tool are all token-shaped ("an `unsafe` keyword
//! without a `// SAFETY:` comment", "an identifier named `HashMap`"),
//! so a full parser would be wasted weight — but a naive
//! `line.contains("unsafe")` scan would be *wrong*: the workspace is
//! full of doc comments discussing `unsafe`, strings containing
//! `// SAFETY:`, and raw-string fixtures that quote the very patterns
//! the rules forbid. The lexer's job is to classify every byte of a
//! source file into exactly one token so the rule engine can tell
//! *code* from *prose*:
//!
//! - line comments (`//`, and the doc forms `///`, `//!`);
//! - block comments with **nesting** (`/* /* */ */` is one comment);
//! - string literals, including escapes (`"\""`), byte strings
//!   (`b"..."`), and raw strings with arbitrary hash fences
//!   (`r#"..."#`, `br##"..."##`);
//! - char literals vs lifetimes (`'x'` and `'\n'` are chars; `'a` in
//!   `&'a str` is a lifetime — disambiguated by the byte *after* the
//!   would-be char);
//! - identifiers/keywords, numbers, and single-byte punctuation.
//!
//! Tokens carry their source text and line span, so diagnostics point
//! at real `file:line` locations and multi-line tokens (block
//! comments, raw strings) can be attributed to every line they cover.

/// What a token is. Comments are *kept* (hence "lossless") — the
/// `SAFETY:` and `ser-lint: allow` conventions live in them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `fn`, …).
    Ident,
    /// `// …` comment; `doc` marks `///` and `//!` forms.
    LineComment,
    /// `/* … */` comment, nesting already resolved.
    BlockComment,
    /// Any string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, …
    Str,
    /// A char or byte literal: `'x'`, `'\u{1F980}'`, `b'\n'`.
    Char,
    /// A lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// A numeric literal (integers and floats, suffixes included).
    Number,
    /// One byte of punctuation (`{`, `(`, `#`, `.`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based lines it spans.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (== `line` unless multi-line).
    pub end_line: u32,
}

impl Token {
    /// Whether this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is a doc comment (`///`, `//!`, `/**`,
    /// `/*!`). Plain `////…` dividers are *not* docs (rustdoc agrees).
    #[must_use]
    pub fn is_doc_comment(&self) -> bool {
        match self.kind {
            TokenKind::LineComment => {
                (self.text.starts_with("///") && !self.text.starts_with("////"))
                    || self.text.starts_with("//!")
            }
            TokenKind::BlockComment => {
                (self.text.starts_with("/**") && !self.text.starts_with("/***"))
                    || self.text.starts_with("/*!")
            }
            _ => false,
        }
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated
/// constructs (a file ending mid-string) lex as a final token running
/// to end of input — the rule engine diagnoses files, it does not
/// reject them.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, keeping the line counter honest.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let start_line = self.line;
            let kind = self.next_kind(c);
            let Some(kind) = kind else { continue };
            let text: String = self.chars[start..self.pos].iter().collect();
            self.tokens.push(Token {
                kind,
                text,
                line: start_line,
                end_line: self.line,
            });
        }
        self.tokens
    }

    /// Dispatches on the first char; returns `None` for whitespace
    /// (consumed, no token).
    fn next_kind(&mut self, c: char) -> Option<TokenKind> {
        match c {
            _ if c.is_whitespace() => {
                self.bump();
                None
            }
            '/' if self.peek(1) == Some('/') => {
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                Some(TokenKind::LineComment)
            }
            '/' if self.peek(1) == Some('*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some('/'), Some('*')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            self.bump();
                        }
                        (None, _) => break,
                    }
                }
                Some(TokenKind::BlockComment)
            }
            '"' => {
                self.string();
                Some(TokenKind::Str)
            }
            '\'' => self.quote(),
            _ if c.is_alphabetic() || c == '_' => self.word(),
            _ if c.is_ascii_digit() => {
                self.number();
                Some(TokenKind::Number)
            }
            _ => {
                self.bump();
                Some(TokenKind::Punct)
            }
        }
    }

    /// A `"…"` body, opening quote included; handles `\"` and `\\`.
    fn string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `'` starts either a lifetime or a char literal. The grammar's
    /// actual disambiguation: `'x` is a lifetime unless the char after
    /// the identifier-ish run is another `'` — so `'a'` is a char,
    /// `'a,` a lifetime, `'static` a lifetime, `'\n'` a char (the
    /// backslash can never start a lifetime).
    fn quote(&mut self) -> Option<TokenKind> {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        self.bump(); // the quote
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return Some(TokenKind::Lifetime);
        }
        // Char literal: consume to the closing quote, escapes skipped.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        Some(TokenKind::Char)
    }

    /// An identifier-ish run. Resolves the raw-string prefixes (`r`,
    /// `b`, `br`, `rb`) by looking at what follows the word, and the
    /// raw-identifier form `r#ident`.
    fn word(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match word.as_str() {
            // `b'x'` — byte char.
            "b" if self.peek(0) == Some('\'') => {
                self.bump();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                return Some(TokenKind::Char);
            }
            // `b"…"` — byte string with ordinary escape rules.
            "b" if self.peek(0) == Some('"') => {
                self.string();
                return Some(TokenKind::Str);
            }
            // Raw (byte) strings: `r"…"`, `r#"…"#`, `br##"…"##`.
            "r" | "br" | "rb" => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    return Some(TokenKind::Str);
                }
                // `r#ident` — a raw identifier: fold the `#` and the
                // word into one Ident token.
                if word == "r" && hashes == 1 {
                    self.bump(); // '#'
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                return Some(TokenKind::Ident);
            }
            _ => {}
        }
        Some(TokenKind::Ident)
    }

    /// The body of a raw string already opened with `hashes` fences:
    /// runs to `"` followed by that many `#`s — no escapes exist.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// A numeric literal: digits, `_` separators, type suffixes, hex
    /// letters, and a fractional part when the dot is followed by a
    /// digit (so `0..10` stays three tokens and `1.5e-3` is one).
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            let continues = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E')));
            if !continues {
                break;
            }
            self.bump();
        }
    }
}
