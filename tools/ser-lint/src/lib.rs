//! `ser-lint` — the workspace invariant checker.
//!
//! The suite's correctness story rests on contracts no compiler
//! checks: the AVX2 kernel must stay **bit-identical** to its scalar
//! twin (no FMA, no reassociation, no order-nondeterministic
//! iteration in plan or sweep code), the daemon's request path must be
//! **panic-free**, every `unsafe` site must justify itself, a threaded
//! `CancelToken` must actually be polled, and the wire protocol's
//! error codes and ops must stay documented. Until this tool, those
//! contracts lived in doc comments and reviewer vigilance; a single
//! `_mm256_fmadd_pd` or an unordered `HashMap` walk in a plan path
//! would silently break the equivalence every proptest oracle and the
//! Mendo sequential-stopping accuracy contract rest on.
//!
//! Like the rest of the tree (`tools/bench-diff`, the hand-rolled JSON
//! layer), this is a vendored-offline tool: no external dependencies,
//! a strict hand-rolled lexer ([`lexer`]), and a token-shaped rule
//! engine ([`rules`]). `ser-lint check` walks every `.rs` file under
//! `crates/`, `src/`, `tools/` and `tests/`, prints `file:line`
//! diagnostics, and exits non-zero on any violation — CI runs it as a
//! gate. `ser-lint rules` prints the rule table.
//!
//! Suppressions are inline, per-site, and self-documenting:
//!
//! ```text
//! // ser-lint: allow(no-hash-iter) — keyed lookup only, never iterated.
//! ```
//!
//! A bare allow without the justification text is itself a violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{check_wire_doc, lint_file, Diagnostic, RuleInfo, RULES};

/// The directories `check` walks, relative to the workspace root.
/// `vendor/` is deliberately out of scope (offline stand-ins for
/// crates.io, not under the repo's contracts), as are build outputs.
pub const WALK_ROOTS: &[&str] = &["crates", "src", "tools", "tests"];

/// Runs every rule over the workspace rooted at `root`. Returns all
/// diagnostics, sorted by path then line. I/O errors (an unreadable
/// file) surface as diagnostics too — a lint that silently skips a
/// file is not a gate.
#[must_use]
pub fn run_check(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut files = Vec::new();
    for dir in WALK_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    for file in &files {
        let rel = rel_path(root, file);
        match std::fs::read_to_string(file) {
            Ok(src) => diags.extend(rules::lint_file(&rel, &src)),
            Err(e) => diags.push(Diagnostic {
                path: rel,
                line: 0,
                rule: "bare-allow",
                message: format!("cannot read file: {e}"),
            }),
        }
    }

    // Cross-file: protocol wire strings vs README docs.
    let protocol = root.join("crates/service/src/protocol.rs");
    let readme = root.join("README.md");
    match (
        std::fs::read_to_string(&protocol),
        std::fs::read_to_string(&readme),
    ) {
        (Ok(p), Ok(r)) => diags.extend(rules::check_wire_doc(&p, &r)),
        (Err(e), _) => diags.push(Diagnostic {
            path: "crates/service/src/protocol.rs".to_string(),
            line: 0,
            rule: "wire-doc-sync",
            message: format!("cannot read protocol.rs: {e}"),
        }),
        (_, Err(e)) => diags.push(Diagnostic {
            path: "README.md".to_string(),
            line: 0,
            rule: "wire-doc-sync",
            message: format!("cannot read README.md: {e}"),
        }),
    }

    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    diags
}

/// Recursively collects `*.rs` files, skipping `target/` build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `root`-relative path with forward slashes (rule scopes are keyed on
/// this form on every platform).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
