//! The rule engine: repo-specific invariants, checked token-wise.
//!
//! Every rule here mechanizes a contract that previously lived in doc
//! comments and reviewer vigilance:
//!
//! | rule | contract it enforces |
//! |---|---|
//! | `no-fma` | float bit-identity: no fused/reassociating intrinsics |
//! | `no-hash-iter` | plan/sweep determinism: no `HashMap`/`HashSet` in bitwise-contract modules |
//! | `unsafe-allowlist` | `unsafe` stays confined to the SIMD dispatch path |
//! | `safety-comment` | every `unsafe` site justifies itself in writing |
//! | `no-panic-path` | the daemon's request path never panics |
//! | `dead-cancel-token` | a `CancelToken` parameter is honored, not decorative |
//! | `wire-doc-sync` | wire error codes and ops are documented in README |
//!
//! Suppression is per-site and self-documenting:
//! `// ser-lint: allow(<rule>) — <justification>` on the flagged line
//! or the line above. A bare allow without justification is itself a
//! violation (`bare-allow`), so every exemption in the tree explains
//! why it is safe.

use crate::lexer::{lex, Token, TokenKind};

// ---------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------

/// One lint rule's identity and documentation, as printed by
/// `ser-lint rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The id used in diagnostics and `allow(...)` suppressions.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
}

/// Every rule this tool knows, in the order `ser-lint rules` prints.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-fma",
        scope: "crates/core, crates/sim, crates/sp",
        rationale: "FMA single-rounds a*b+c and horizontal adds reassociate; either \
                    changes f64 results in the last ulp and breaks the wire's float \
                    bit-identity contract (scalar twin, proptest oracles, cache splicing).",
    },
    RuleInfo {
        id: "no-hash-iter",
        scope: "plan.rs, sweep.rs, whatif.rs, rules.rs, crates/sp/src/*",
        rationale: "HashMap/HashSet iteration order is randomized per process; an \
                    iteration feeding plan layout or float accumulation would make \
                    results differ run to run. Keyed-lookup-only uses carry a per-site \
                    allow stating they are never iterated.",
    },
    RuleInfo {
        id: "unsafe-allowlist",
        scope: "workspace (allowlist: crates/core/src/{simd,sweep,rules}.rs)",
        rationale: "unsafe is confined to the AVX2 kernel dispatch path; every other \
                    crate carries #![forbid(unsafe_code)] and this rule keeps the \
                    allowlist from silently growing.",
    },
    RuleInfo {
        id: "safety-comment",
        scope: "files where unsafe is allowed",
        rationale: "every unsafe block or fn must be immediately preceded by a \
                    // SAFETY: comment (or carry a # Safety doc section) stating the \
                    invariant that makes it sound.",
    },
    RuleInfo {
        id: "no-panic-path",
        scope: "crates/service/src/{protocol,service,net,jobs}.rs (non-test code)",
        rationale: "a panic on the request path kills a connection thread and poisons \
                    shared engine locks; a daemon serving millions of users answers \
                    with a structured ErrorCode frame instead. unwrap/expect/panic!/ \
                    todo!/unimplemented! are forbidden outside #[cfg(test)].",
    },
    RuleInfo {
        id: "dead-cancel-token",
        scope: "workspace",
        rationale: "a function that accepts a CancelToken but neither polls \
                    (.check/.is_cancelled) nor forwards it advertises cancellability \
                    it does not deliver — the wire's cancel latency contract silently \
                    loses a checkpoint.",
    },
    RuleInfo {
        id: "wire-doc-sync",
        scope: "crates/service/src/protocol.rs vs README.md",
        rationale: "every ErrorCode wire string and every accepted \"op\" must appear \
                    in README's wire-protocol docs, so clients never meet an \
                    undocumented code or ship an op the docs do not admit.",
    },
    RuleInfo {
        id: "bare-allow",
        scope: "workspace",
        rationale: "a ser-lint: allow(...) without a justification defeats the point \
                    of per-site suppression; the dash and reason are mandatory.",
    },
];

/// Intrinsics and methods that fuse or reassociate float arithmetic.
/// `mul_add` is the scalar spelling of FMA; the `hadd`/`hsub` families
/// reassociate across lanes. The kernel uses shuffle/blend epilogues
/// and separate mul-then-add precisely to avoid these.
const FMA_IDENTS: &[&str] = &[
    "_mm256_fmadd_pd",
    "_mm256_fmsub_pd",
    "_mm256_fnmadd_pd",
    "_mm256_fnmsub_pd",
    "_mm256_fmaddsub_pd",
    "_mm256_fmsubadd_pd",
    "_mm256_hadd_pd",
    "_mm256_hsub_pd",
    "_mm256_fmadd_ps",
    "_mm256_hadd_ps",
    "_mm_fmadd_pd",
    "_mm_fmadd_ps",
    "_mm_hadd_pd",
    "_mm_hadd_ps",
    "mul_add",
];

/// Crate paths under the float bit-identity contract (`no-fma`).
const FMA_SCOPE_PREFIXES: &[&str] = &["crates/core/", "crates/sim/", "crates/sp/"];

/// Files feeding the bitwise plan/sweep contract (`no-hash-iter`).
const HASH_SCOPE: &[&str] = &[
    "crates/netlist/src/plan.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/whatif.rs",
    "crates/core/src/rules.rs",
];
const HASH_SCOPE_PREFIXES: &[&str] = &["crates/sp/src/"];

/// The only files where `unsafe` may appear: the AVX2 `LaneVec`
/// implementation and the two dispatch shims that call into it.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/src/simd.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/rules.rs",
];

/// The daemon's request-handling path (`no-panic-path`).
const PANIC_FREE_FILES: &[&str] = &[
    "crates/service/src/protocol.rs",
    "crates/service/src/service.rs",
    "crates/service/src/net.rs",
    "crates/service/src/jobs.rs",
];

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

/// One finding: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule's id.
    pub rule: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------

/// A parsed `// ser-lint: allow(<rule>) — <justification>` directive.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: u32,
    /// Last line the allow covers: the end of its contiguous comment
    /// run plus the first code line after it — so a justification may
    /// wrap over several comment lines.
    until: u32,
    justified: bool,
}

/// Extracts allow directives from a file's comment tokens. An allow
/// suppresses its rule on its own line(s), through the rest of its
/// comment run, and on the first code line that follows (covering
/// both trailing-comment and block-above styles).
fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(at) = t.text.find("ser-lint: allow(") else {
            continue;
        };
        let rest = &t.text[at + "ser-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        // Prose *about* the syntax (`allow(<rule>)` in docs) is not a
        // directive: real rule ids are kebab-case identifiers.
        if rule.is_empty()
            || !rule
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            continue;
        }
        // The justification is mandatory: a dash after the close-paren
        // followed by non-empty text.
        let after = rest[close + 1..].trim_start();
        let justified = ["—", "-", "–"]
            .iter()
            .any(|d| after.starts_with(d) && after.trim_start_matches(d).trim().len() >= 3);
        // Extend coverage over the contiguous comment run this
        // directive starts or sits in, then one more line for the code
        // it annotates.
        let mut until = t.end_line;
        for next in &tokens[i + 1..] {
            if next.is_comment() && next.line <= until + 1 {
                until = next.end_line;
            } else {
                break;
            }
        }
        allows.push(Allow {
            rule,
            line: t.line,
            until: until + 1,
            justified,
        });
    }
    allows
}

/// Whether `rule` is suppressed at `line` by a justified allow.
fn allowed(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.justified && a.rule == rule && line >= a.line && line <= a.until)
}

// ---------------------------------------------------------------------
// Per-file engine
// ---------------------------------------------------------------------

/// Lints one file's source. `rel_path` selects which rules apply and
/// must be repo-relative with forward slashes (`crates/core/src/…`).
/// The cross-file `wire-doc-sync` rule lives in [`check_wire_doc`].
#[must_use]
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let allows = collect_allows(&tokens);
    let mut out = Vec::new();

    // Meta-rules first: a malformed allow is a violation wherever it
    // appears, and an allow naming an unknown rule is a typo that
    // would otherwise silently suppress nothing.
    for a in &allows {
        if !a.justified {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: a.line,
                rule: "bare-allow",
                message: format!(
                    "allow({}) without a justification — write \
                     `// ser-lint: allow({}) — <why this site is safe>`",
                    a.rule, a.rule
                ),
            });
        }
        if !RULES.iter().any(|r| r.id == a.rule) {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: a.line,
                rule: "bare-allow",
                message: format!("allow({}) names an unknown rule", a.rule),
            });
        }
    }

    let test_spans = cfg_test_spans(&tokens);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut diag = |rule: &'static str, line: u32, message: String| {
        if !allowed(&allows, rule, line) {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    // --- no-fma ---------------------------------------------------
    if FMA_SCOPE_PREFIXES.iter().any(|p| rel_path.starts_with(p)) {
        for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
            if FMA_IDENTS.contains(&t.text.as_str()) {
                diag(
                    "no-fma",
                    t.line,
                    format!(
                        "`{}` fuses or reassociates float arithmetic — this crate is \
                         under the bit-identity contract (use mul-then-add and \
                         shuffle/blend epilogues)",
                        t.text
                    ),
                );
            }
        }
    }

    // --- no-hash-iter ---------------------------------------------
    if HASH_SCOPE.contains(&rel_path) || HASH_SCOPE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
    {
        for t in tokens.iter().filter(|t| t.kind == TokenKind::Ident) {
            if t.text == "HashMap" || t.text == "HashSet" {
                diag(
                    "no-hash-iter",
                    t.line,
                    format!(
                        "`{}` in a bitwise-contract module: iteration order is \
                         nondeterministic — use an ordered structure, or allow the \
                         site with a justification that it is never iterated",
                        t.text
                    ),
                );
            }
        }
    }

    // --- unsafe-allowlist + safety-comment ------------------------
    let unsafe_ok = UNSAFE_ALLOWLIST.contains(&rel_path);
    let lines = LineTable::new(&tokens);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !unsafe_ok {
            diag(
                "unsafe-allowlist",
                t.line,
                format!(
                    "`unsafe` outside the allowlist ({}) — keep unsafe code on the \
                     SIMD dispatch path or extend the allowlist deliberately",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            );
            continue;
        }
        if !lines.has_safety_justification(t.line) {
            // `unsafe fn` declarations may justify themselves with a
            // `# Safety` doc section instead of a `// SAFETY:` comment.
            let is_fn_decl = tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "fn");
            let what = if is_fn_decl {
                "`unsafe fn` without a preceding `// SAFETY:` comment or a \
                 `# Safety` doc section"
            } else {
                "`unsafe` without an immediately preceding `// SAFETY:` comment"
            };
            diag("safety-comment", t.line, what.to_string());
        }
    }

    // --- no-panic-path --------------------------------------------
    if PANIC_FREE_FILES.contains(&rel_path) {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || in_test(t.line) {
                continue;
            }
            let next_is = |text: &str| {
                tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == text)
            };
            let prev_is_dot =
                i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == ".";
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => prev_is_dot && next_is("("),
                "panic" | "todo" | "unimplemented" => next_is("!"),
                _ => false,
            };
            if hit {
                diag(
                    "no-panic-path",
                    t.line,
                    format!(
                        "`{}` on the daemon's request path — convert to a structured \
                         ErrorCode reply (or recover, e.g. lock poisoning)",
                        t.text
                    ),
                );
            }
        }
    }

    // --- dead-cancel-token ----------------------------------------
    for f in find_cancel_fns(&tokens) {
        if f.uses == 0 {
            diag(
                "dead-cancel-token",
                f.line,
                format!(
                    "fn `{}` takes CancelToken parameter `{}` but never polls or \
                     forwards it — a dead token is a missing cancellation checkpoint",
                    f.name, f.param
                ),
            );
        }
    }

    // Two tokens on one line can trip the same rule twice (e.g. a
    // declaration and a constructor); one diagnostic per line reads
    // better and the allow granularity is the line anyway.
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);

    out
}

// ---------------------------------------------------------------------
// Line classification (for SAFETY-comment adjacency)
// ---------------------------------------------------------------------

/// Per-line facts derived from the token stream — *not* from raw text,
/// so a string literal containing `// SAFETY:` can never satisfy the
/// rule and a comment inside a raw-string fixture never triggers it.
struct LineTable {
    /// For each 1-based line: (has code, has attr start, safety text).
    facts: Vec<LineFacts>,
}

#[derive(Default, Clone)]
struct LineFacts {
    /// A non-comment token starts on or spans this line.
    code: bool,
    /// The line's first token is `#` (attribute); SAFETY scanning may
    /// step over it.
    attr_start: bool,
    /// A comment on this line contains `SAFETY:` or a doc comment
    /// contains `# Safety`.
    safety: bool,
    /// Any token at all touches this line.
    any: bool,
}

impl LineTable {
    fn new(tokens: &[Token]) -> Self {
        let max_line = tokens.last().map_or(0, |t| t.end_line) as usize;
        let mut facts = vec![LineFacts::default(); max_line + 2];
        let mut first_on_line: Vec<Option<&Token>> = vec![None; max_line + 2];
        for t in tokens {
            for line in t.line..=t.end_line {
                let f = &mut facts[line as usize];
                f.any = true;
                if !t.is_comment() {
                    f.code = true;
                }
                if first_on_line[line as usize].is_none() {
                    first_on_line[line as usize] = Some(t);
                }
            }
            if t.is_comment() {
                let safety = t.text.contains("SAFETY:")
                    || (t.is_doc_comment() && t.text.contains("# Safety"));
                if safety {
                    for line in t.line..=t.end_line {
                        facts[line as usize].safety = true;
                    }
                }
            }
        }
        for (line, f) in facts.iter_mut().enumerate() {
            if let Some(t) = first_on_line[line] {
                f.attr_start = t.kind == TokenKind::Punct && t.text == "#";
            }
        }
        LineTable { facts }
    }

    /// Whether the `unsafe` on `line` is justified: a `SAFETY:`
    /// comment on the same line, or on a run of comment/attribute
    /// lines immediately above (doc comments with `# Safety` count;
    /// blank lines and unrelated code break the run).
    fn has_safety_justification(&self, line: u32) -> bool {
        let line = line as usize;
        if self.facts.get(line).is_some_and(|f| f.safety) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let f = &self.facts[l];
            if f.safety {
                return true;
            }
            let steppable = f.any && (!f.code || f.attr_start);
            if !steppable {
                return false;
            }
            l -= 1;
        }
        false
    }
}

// ---------------------------------------------------------------------
// #[cfg(test)] spans
// ---------------------------------------------------------------------

/// Line spans covered by `#[cfg(test)]`-gated items (the following
/// brace-balanced block). Test modules are exempt from
/// `no-panic-path` — tests unwrap freely.
fn cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut spans = Vec::new();
    let texts: Vec<&str> = code.iter().map(|(_, t)| t.text.as_str()).collect();
    for w in 0..texts.len().saturating_sub(6) {
        if texts[w..w + 7] != ["#", "[", "cfg", "(", "test", ")", "]"] {
            continue;
        }
        let start_line = code[w].1.line;
        // Find the gated item's opening brace, then its match.
        let mut depth = 0i64;
        let mut end_line = start_line;
        for &(_, t) in &code[w + 7..] {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.end_line;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    // A braceless gated item (`#[cfg(test)] use …;`).
                    end_line = t.end_line;
                    break;
                }
                _ => {}
            }
        }
        spans.push((start_line, end_line));
    }
    spans
}

// ---------------------------------------------------------------------
// CancelToken liveness
// ---------------------------------------------------------------------

struct CancelFn {
    name: String,
    param: String,
    line: u32,
    uses: usize,
}

/// Finds every `fn` whose parameter list mentions `CancelToken` and
/// counts uses of the binding inside the body. Forwarding the token to
/// a callee counts as a use — the checkpoint then lives downstream.
/// Over-approximation: a shadowing closure parameter of the same name
/// also counts (documented; the lint is token-shaped, not a resolver).
fn find_cancel_fns(tokens: &[Token]) -> Vec<CancelFn> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            // `fn(...)` pointer type — not a declaration.
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = code[i].line;
        // Skip generics to the parameter list's `(`.
        let mut j = i + 2;
        if code.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i64;
            while j < code.len() {
                match code[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if code.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        // Collect parameters to the matching `)`, splitting at
        // top-level commas. Generic arguments nest with `<`/`>`, which
        // the token stream spells as punctuation — track them so a
        // comma inside `HashMap<K, V>` does not split the parameter
        // (and do not mistake the `>` of a `->` arrow for a closer).
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut params: Vec<Vec<&Token>> = vec![Vec::new()];
        let params_end;
        loop {
            let Some(t) = code.get(j) else {
                return out; // truncated input
            };
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        params_end = j;
                        break;
                    }
                }
                "<" => angle += 1,
                ">" if angle > 0 && !(j > 0 && code[j - 1].text == "-") => angle -= 1,
                "," if depth == 1 && angle == 0 => {
                    params.push(Vec::new());
                    j += 1;
                    continue;
                }
                _ => {}
            }
            if depth >= 1 && !(depth == 1 && t.text == "(") {
                if let Some(last) = params.last_mut() {
                    last.push(t);
                }
            }
            j += 1;
        }
        // The binding of each CancelToken-typed parameter: the first
        // identifier that is not a pattern keyword.
        let mut bindings = Vec::new();
        for p in &params {
            if !p.iter().any(|t| t.text == "CancelToken") {
                continue;
            }
            if let Some(b) = p.iter().find(|t| {
                t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "self")
            }) {
                if b.text != "_" {
                    bindings.push(b.text.clone());
                }
            }
        }
        if bindings.is_empty() {
            i = params_end + 1;
            continue;
        }
        // Skip the return type / where clause to the body `{` (or `;`
        // for a trait method declaration, which has no body to check).
        let mut k = params_end + 1;
        let body_start;
        loop {
            let Some(t) = code.get(k) else {
                return out;
            };
            match t.text.as_str() {
                "{" => {
                    body_start = k;
                    break;
                }
                ";" => {
                    body_start = usize::MAX;
                    break;
                }
                _ => k += 1,
            }
        }
        if body_start == usize::MAX {
            i = k + 1;
            continue;
        }
        // Count body uses of each binding.
        let mut depth = 0i64;
        let mut uses = vec![0usize; bindings.len()];
        let mut b = body_start;
        while b < code.len() {
            match code[b].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if code[b].kind == TokenKind::Ident {
                        for (bi, name) in bindings.iter().enumerate() {
                            if &code[b].text == name {
                                uses[bi] += 1;
                            }
                        }
                    }
                }
            }
            b += 1;
        }
        for (bi, param) in bindings.iter().enumerate() {
            out.push(CancelFn {
                name: name.clone(),
                param: param.clone(),
                line,
                uses: uses[bi],
            });
        }
        i = body_start + 1;
    }
    out
}

// ---------------------------------------------------------------------
// wire/doc sync
// ---------------------------------------------------------------------

/// Cross-file rule: every `ErrorCode` wire string and every entry of
/// `WIRE_OPS` in `protocol.rs` must appear in the README — codes as
/// `` `code` ``, ops as `"op": "name"` or `` `name` ``. Extraction
/// failure is itself a diagnostic so pattern drift cannot silently
/// disable the rule.
#[must_use]
pub fn check_wire_doc(protocol_src: &str, readme: &str) -> Vec<Diagnostic> {
    let path = "crates/service/src/protocol.rs";
    let tokens = lex(protocol_src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();

    // `ErrorCode::Variant => "wire_string"` pairs (the as_str match).
    let mut codes: Vec<(&str, u32)> = Vec::new();
    for w in 0..code.len().saturating_sub(6) {
        let window = &code[w..w + 7];
        let shape = window[0].text == "ErrorCode"
            && window[1].text == ":"
            && window[2].text == ":"
            && window[3].kind == TokenKind::Ident
            && window[4].text == "="
            && window[5].text == ">"
            && window[6].kind == TokenKind::Str;
        if shape {
            codes.push((unquote(&window[6].text), window[6].line));
        }
    }
    if codes.is_empty() {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: "wire-doc-sync",
            message: "could not extract any `ErrorCode::… => \"…\"` wire strings — \
                      the rule's anchor pattern has drifted; update ser-lint"
                .to_string(),
        });
    }
    for (c, line) in codes {
        if !readme.contains(&format!("`{c}`")) {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule: "wire-doc-sync",
                message: format!(
                    "wire error code \"{c}\" is not documented in README's \
                     error-code table (expected `{c}` in backticks)"
                ),
            });
        }
    }

    // The WIRE_OPS table: every op spelling the parser accepts.
    let mut ops: Vec<(&str, u32)> = Vec::new();
    if let Some(at) = code.iter().position(|t| t.text == "WIRE_OPS") {
        for t in &code[at..] {
            if t.kind == TokenKind::Str {
                ops.push((unquote(&t.text), t.line));
            }
            if t.text == ";" {
                break;
            }
        }
    }
    if ops.is_empty() {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: "wire-doc-sync",
            message: "could not find the WIRE_OPS table — the rule's anchor has \
                      drifted; update ser-lint"
                .to_string(),
        });
    }
    for (op, line) in ops {
        let documented =
            readme.contains(&format!("\"op\": \"{op}\"")) || readme.contains(&format!("`{op}`"));
        if !documented {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule: "wire-doc-sync",
                message: format!(
                    "wire op \"{op}\" is not documented in README's wire-protocol \
                     section (expected `\"op\": \"{op}\"` or `{op}` in backticks)"
                ),
            });
        }
    }
    out
}

/// Strips the quotes from a lexed string literal's text.
fn unquote(text: &str) -> &str {
    text.trim_start_matches(['b', 'r', '#'])
        .trim_start_matches('"')
        .trim_end_matches('#')
        .trim_end_matches('"')
}
