//! `ser-lint` CLI — see the library docs for what the rules enforce.
//!
//! ```text
//! ser-lint check [--root DIR]   # lint the workspace; exit 1 on violations
//! ser-lint rules                # print the rule table
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ser_lint::{run_check, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: ser-lint check [--root DIR] | ser-lint rules");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `check` is routinely run from the workspace root; walking an
    // empty tree would vacuously pass, so refuse roots that lack the
    // directories the rules are scoped to.
    if !root.join("crates").is_dir() {
        eprintln!(
            "ser-lint: `{}` does not look like the workspace root (no crates/)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let diags = run_check(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("ser-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("ser-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn print_rules() {
    println!("ser-lint rules — suppress per site with:");
    println!("  // ser-lint: allow(<rule>) — <justification (mandatory)>");
    println!();
    for r in RULES {
        println!("{}", r.id);
        println!("  scope:     {}", r.scope);
        println!("  rationale: {}", r.rationale);
        println!();
    }
}
