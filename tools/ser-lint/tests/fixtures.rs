//! Self-tests: every rule must catch its seeded violation and stay
//! quiet on the corrected twin. All fixture sources live in string
//! literals, which the workspace walk lexes as `Str` tokens — the
//! fixtures are inert when `ser-lint check` lints this very file.

use ser_lint::lexer::{lex, TokenKind};
use ser_lint::{check_wire_doc, lint_file, Diagnostic, RULES};

/// The rule ids present in `diags`, deduplicated, in order.
fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    ids.dedup();
    ids
}

// -----------------------------------------------------------------
// no-fma
// -----------------------------------------------------------------

#[test]
fn fma_intrinsic_flagged_in_scope() {
    let src = r#"
fn fused(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}
"#;
    let diags = lint_file("crates/core/src/fake.rs", src);
    assert_eq!(rules_hit(&diags), ["no-fma"], "{diags:?}");
    assert_eq!(diags[0].line, 3);

    let diags = lint_file("crates/sim/src/fake.rs", src);
    assert_eq!(rules_hit(&diags), ["no-fma"]);
}

#[test]
fn fma_avx2_intrinsic_flagged() {
    let src = "unsafe { _mm256_fmadd_pd(a, b, c) }";
    let diags = lint_file("crates/sp/src/fake.rs", src);
    assert!(diags.iter().any(|d| d.rule == "no-fma"), "{diags:?}");
}

#[test]
fn fma_outside_scope_is_fine() {
    let src = "fn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }";
    assert!(lint_file("tools/fake/src/main.rs", src).is_empty());
    assert!(lint_file("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn fma_in_string_or_comment_is_inert() {
    let src = r##"
// mul_add would break bit-identity; see _mm256_fmadd_pd docs.
const WHY: &str = "never call mul_add here";
"##;
    assert!(lint_file("crates/core/src/fake.rs", src).is_empty());
}

// -----------------------------------------------------------------
// no-hash-iter
// -----------------------------------------------------------------

#[test]
fn hashmap_flagged_in_bitwise_module() {
    let src = "use std::collections::HashMap;";
    for path in [
        "crates/netlist/src/plan.rs",
        "crates/core/src/sweep.rs",
        "crates/sp/src/anything.rs",
    ] {
        let diags = lint_file(path, src);
        assert_eq!(rules_hit(&diags), ["no-hash-iter"], "{path}");
    }
    // Out of scope: the service layer may hash freely.
    assert!(lint_file("crates/service/src/chaos.rs", src).is_empty());
}

#[test]
fn justified_allow_suppresses_hash_iter() {
    let src = "\
// ser-lint: allow(no-hash-iter) — keyed lookup only, never iterated.
use std::collections::HashMap;
";
    assert!(lint_file("crates/core/src/sweep.rs", src).is_empty());
}

#[test]
fn two_hits_on_one_line_dedup_to_one_diagnostic() {
    let src = "fn f(a: HashMap<u32, u32>, b: HashMap<u32, u32>) {}";
    let diags = lint_file("crates/sp/src/fake.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

// -----------------------------------------------------------------
// bare-allow
// -----------------------------------------------------------------

#[test]
fn bare_allow_is_itself_a_violation() {
    let src = "\
// ser-lint: allow(no-hash-iter)
use std::collections::HashMap;
";
    let diags = lint_file("crates/core/src/sweep.rs", src);
    // The unjustified allow does NOT suppress, so both fire.
    let ids = rules_hit(&diags);
    assert!(ids.contains(&"bare-allow"), "{diags:?}");
    assert!(ids.contains(&"no-hash-iter"), "{diags:?}");
}

#[test]
fn allow_naming_unknown_rule_is_flagged() {
    let src = "// ser-lint: allow(no-such-rule) — because reasons here.\n";
    let diags = lint_file("tools/fake/src/main.rs", src);
    assert_eq!(rules_hit(&diags), ["bare-allow"], "{diags:?}");
}

#[test]
fn multiline_allow_comment_covers_following_code() {
    let src = "\
// ser-lint: allow(no-hash-iter) — a justification that wraps
// across two comment lines before the code it annotates.
use std::collections::HashMap;
";
    assert!(lint_file("crates/core/src/whatif.rs", src).is_empty());
}

// -----------------------------------------------------------------
// unsafe-allowlist + safety-comment
// -----------------------------------------------------------------

#[test]
fn unsafe_outside_allowlist_flagged() {
    let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
    let diags = lint_file("crates/sim/src/fake.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == "unsafe-allowlist"),
        "{diags:?}"
    );
}

#[test]
fn unsafe_without_safety_comment_flagged_in_allowlisted_file() {
    let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
    let diags = lint_file("crates/core/src/simd.rs", src);
    assert_eq!(rules_hit(&diags), ["safety-comment"], "{diags:?}");
}

#[test]
fn safety_comment_satisfies_rule() {
    let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
";
    assert!(lint_file("crates/core/src/simd.rs", src).is_empty());
}

#[test]
fn safety_comment_inside_string_does_not_satisfy() {
    let src = "\
const DECOY: &str = \"// SAFETY: not a real comment\";
fn f(p: *const u8) -> u8 { unsafe { *p } }
";
    let diags = lint_file("crates/core/src/simd.rs", src);
    assert_eq!(rules_hit(&diags), ["safety-comment"], "{diags:?}");
}

// -----------------------------------------------------------------
// no-panic-path
// -----------------------------------------------------------------

#[test]
fn unwrap_on_request_path_flagged() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let diags = lint_file("crates/service/src/protocol.rs", src);
    assert!(diags.iter().any(|d| d.rule == "no-panic-path"), "{diags:?}");
    // The same code is fine anywhere else.
    assert!(lint_file("crates/core/src/fake.rs", src).is_empty());
}

#[test]
fn panic_macros_flagged_but_unreachable_is_not() {
    let src = "\
fn f(n: u8) {
    match n {
        0 => panic!(\"no\"),
        1 => todo!(),
        2 => unimplemented!(),
        _ => unreachable!(\"fine: proves exhaustion, not an error path\"),
    }
}
";
    let diags = lint_file("crates/service/src/net.rs", src);
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, [3, 4, 5], "{diags:?}");
}

#[test]
fn unwrap_inside_cfg_test_module_is_fine() {
    let src = "\
fn shipping(x: Option<u8>) -> Option<u8> { x }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::shipping(Some(1)).unwrap();
    }
}
";
    assert!(lint_file("crates/service/src/jobs.rs", src).is_empty());
}

#[test]
fn expect_as_a_field_name_is_not_flagged() {
    // Only `.expect(` method calls count — a struct field or local
    // named `expect` is not a panic site.
    let src = "struct T { expect: u8 }\nfn f(t: T) -> u8 { t.expect }";
    assert!(lint_file("crates/service/src/service.rs", src).is_empty());
}

// -----------------------------------------------------------------
// dead-cancel-token
// -----------------------------------------------------------------

#[test]
fn unused_cancel_token_param_flagged() {
    let src = "\
fn sweep_all(sites: &[u32], cancel: &CancelToken) -> u32 {
    sites.len() as u32
}
";
    let diags = lint_file("crates/core/src/fake.rs", src);
    assert_eq!(rules_hit(&diags), ["dead-cancel-token"], "{diags:?}");
    assert!(diags[0].message.contains("sweep_all"), "{diags:?}");
}

#[test]
fn polled_or_forwarded_token_is_fine() {
    let polled = "\
fn sweep_all(sites: &[u32], cancel: &CancelToken) -> Result<u32, ()> {
    cancel.check()?;
    Ok(sites.len() as u32)
}
";
    let forwarded = "\
fn outer(cancel: Option<CancelToken>) {
    inner(cancel);
}
";
    assert!(lint_file("crates/core/src/fake.rs", polled).is_empty());
    assert!(lint_file("crates/core/src/fake.rs", forwarded).is_empty());
}

#[test]
fn generic_params_do_not_confuse_the_binding_finder() {
    // The comma inside the generic must not split the parameter list:
    // `reg` is the binding, and it IS used.
    let src = "\
fn register(reg: &Mutex<HashMap<String, Vec<CancelToken>>>, id: &str) {
    reg.lock();
}
";
    let diags = lint_file("crates/core/src/fake.rs", src);
    assert!(
        diags.iter().all(|d| d.rule != "dead-cancel-token"),
        "{diags:?}"
    );
}

#[test]
fn bodyless_trait_method_is_not_flagged() {
    let src = "trait Cancellable { fn run(&self, cancel: &CancelToken) -> u32; }";
    assert!(lint_file("crates/core/src/fake.rs", src).is_empty());
}

// -----------------------------------------------------------------
// wire-doc-sync
// -----------------------------------------------------------------

const FAKE_PROTOCOL: &str = r#"
impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Internal => "internal",
        }
    }
}
pub const WIRE_OPS: &[&str] = &["hello", "sweep"];
"#;

#[test]
fn documented_codes_and_ops_pass() {
    let readme = "\
Codes: `parse`, `internal`.
Ops: {\"op\": \"hello\"} and {\"op\": \"sweep\"}.
";
    assert!(check_wire_doc(FAKE_PROTOCOL, readme).is_empty());
}

#[test]
fn missing_code_and_op_are_flagged() {
    let readme = "Only `parse` and {\"op\": \"hello\"} are documented.";
    let diags = check_wire_doc(FAKE_PROTOCOL, readme);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("\"internal\"")));
    assert!(diags.iter().any(|d| d.message.contains("\"sweep\"")));
}

#[test]
fn anchor_drift_is_loud_not_silent() {
    // A protocol file the extractors cannot read must fail the lint,
    // not silently report "all documented".
    let diags = check_wire_doc("fn nothing_here() {}", "");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "wire-doc-sync"));
    assert!(diags.iter().any(|d| d.message.contains("ErrorCode")));
    assert!(diags.iter().any(|d| d.message.contains("WIRE_OPS")));
}

// -----------------------------------------------------------------
// Lexer edge cases
// -----------------------------------------------------------------

#[test]
fn raw_string_contents_are_inert() {
    // `unsafe` and a forbidden intrinsic inside a raw string must not
    // trip any rule.
    let src = r###"
const FIXTURE: &str = r#"unsafe { _mm256_fmadd_pd(a, b, c) }"#;
"###;
    assert!(lint_file("crates/core/src/fake.rs", src).is_empty());
}

#[test]
fn nested_block_comments_lex_as_one_comment() {
    let toks = lex("/* outer /* inner */ still comment */ fn");
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert!(toks[0].text.contains("inner"));
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn char_literal_vs_lifetime() {
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
    let kinds: Vec<_> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Char | TokenKind::Lifetime))
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(
        kinds,
        [
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Char, "'x'"),
        ]
    );
}

#[test]
fn raw_and_byte_strings_lex_as_strings() {
    for src in [
        r###"r#"has "quotes" inside"#"###,
        r###"br##"raw # bytes"##"###,
        "b\"bytes\"",
        "b'x'",
    ] {
        let toks = lex(src);
        assert_eq!(toks.len(), 1, "{src}");
        assert!(
            matches!(toks[0].kind, TokenKind::Str | TokenKind::Char),
            "{src}: {:?}",
            toks[0].kind
        );
    }
}

#[test]
fn truncated_input_never_panics() {
    for src in ["\"unterminated", "/* unterminated", "r#\"unterminated", "'"] {
        let _ = lex(src);
    }
}

#[test]
fn line_numbers_span_multiline_tokens() {
    let toks = lex("/* one\ntwo\nthree */ ident");
    assert_eq!((toks[0].line, toks[0].end_line), (1, 3));
    assert_eq!(toks[1].line, 3);
}

// -----------------------------------------------------------------
// Rule table hygiene
// -----------------------------------------------------------------

#[test]
fn rule_ids_are_unique_and_kebab_case() {
    let mut seen = std::collections::BTreeSet::new();
    for r in RULES {
        assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
        assert!(
            r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "rule id {} is not kebab-case",
            r.id
        );
        assert!(!r.rationale.is_empty() && !r.scope.is_empty());
    }
}
