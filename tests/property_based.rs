//! Property-based tests over randomly generated circuits: the
//! invariants that must hold for *every* circuit, not just the
//! hand-picked ones.

use proptest::prelude::*;
use ser_suite::epp::{EppAnalysis, PolarityMode};
use ser_suite::gen::RandomDag;
use ser_suite::netlist::{parse_bench, write_bench, GateKind};
use ser_suite::sim::{BitSim, MonteCarlo};
use ser_suite::sp::{ExactSp, IndependentSp, InputProbs, SpEngine};

/// Strategy: a random-DAG configuration plus seed.
fn dag_strategy() -> impl Strategy<Value = (usize, usize, f64, f64, u64)> {
    (
        2usize..8,   // inputs
        3usize..40,  // gates
        0.0f64..1.0, // reconvergence
        0.0f64..0.5, // xor fraction
        0u64..1_000, // seed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip: write_bench(parse_bench(x)) reproduces the circuit.
    #[test]
    fn bench_format_round_trips((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = RandomDag::new(inputs, gates)
            .with_reconvergence(reconv)
            .with_xor_fraction(xf)
            .build(seed);
        let text = write_bench(&c);
        let back = parse_bench(&text, c.name()).expect("writer output parses");
        prop_assert_eq!(&c, &back);
    }

    /// Every P_sensitized is a probability, and output nodes have 1.
    #[test]
    fn p_sensitized_is_probability((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = RandomDag::new(inputs, gates)
            .with_reconvergence(reconv)
            .with_xor_fraction(xf)
            .build(seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        for id in c.node_ids() {
            let r = analysis.site(id);
            prop_assert!((0.0..=1.0).contains(&r.p_sensitized()),
                "P_sens({id}) = {}", r.p_sensitized());
            for p in r.per_point() {
                let t = p.value;
                prop_assert!((t.sum() - 1.0).abs() < 1e-6, "tuple sums to {}", t.sum());
            }
        }
        for &po in c.outputs() {
            prop_assert_eq!(analysis.site(po).p_sensitized(), 1.0);
        }
    }

    /// Merged polarity never reports less arrival than tracked at a
    /// single observe point fed by AND/OR logic... in general merged
    /// can differ either way at XOR, so assert only the documented
    /// global invariant: both are probabilities and merged >= tracked
    /// when the circuit has no XOR/XNOR gates.
    #[test]
    fn merged_dominates_tracked_without_xor((inputs, gates, reconv, _xf, seed) in dag_strategy()) {
        let c = RandomDag::new(inputs, gates)
            .with_reconvergence(reconv)
            .with_xor_fraction(0.0)
            .build(seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        for id in c.node_ids() {
            let tracked = analysis.site_with(id, PolarityMode::Tracked).p_sensitized();
            let merged = analysis.site_with(id, PolarityMode::Merged).p_sensitized();
            prop_assert!(merged >= tracked - 1e-9,
                "site {id}: merged {merged} < tracked {tracked}");
        }
    }

    /// The independent SP engine matches the exact oracle on circuits
    /// whose gates never share support (trees): build a random tree.
    #[test]
    fn independent_sp_exact_on_trees(seed in 0u64..500, width in 2usize..10) {
        // A tree: each gate consumes fresh inputs only.
        let mut src = String::new();
        let mut names: Vec<String> = Vec::new();
        for i in 0..width {
            src.push_str(&format!("INPUT(i{i})\n"));
            names.push(format!("i{i}"));
        }
        // Pair up repeatedly.
        let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand];
        let mut g = 0usize;
        let mut rng_state = seed;
        while names.len() > 1 {
            let a = names.remove(0);
            let b = names.remove(0);
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let kind = kinds[(rng_state >> 33) as usize % kinds.len()];
            let name = format!("g{g}");
            src.push_str(&format!("{name} = {}({a}, {b})\n", kind.bench_keyword()));
            names.push(name);
            g += 1;
        }
        src.push_str(&format!("OUTPUT({})\n", names[0]));
        let c = parse_bench(&src, "tree").unwrap();
        let fast = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let oracle = ExactSp::new().compute(&c, &InputProbs::default()).unwrap();
        prop_assert!(fast.max_abs_diff(&oracle) < 1e-9,
            "tree SP mismatch {}", fast.max_abs_diff(&oracle));
    }

    /// Bit-parallel simulation equals scalar evaluation per pattern.
    #[test]
    fn bitsim_matches_scalar((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = RandomDag::new(inputs, gates)
            .with_reconvergence(reconv)
            .with_xor_fraction(xf)
            .build(seed);
        let sim = BitSim::new(&c).unwrap();
        let words: Vec<u64> = (0..inputs as u64)
            .map(|i| seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32))
            .collect();
        let packed = sim.run(&words);
        for p in [0u32, 13, 63] {
            let bits: Vec<bool> = words.iter().map(|w| w >> p & 1 != 0).collect();
            let scalar = sim.run_scalar(&bits);
            for id in c.node_ids() {
                prop_assert_eq!(packed[id.index()] >> p & 1 != 0, scalar[id.index()],
                    "node {} pattern {}", id, p);
            }
        }
    }

    /// The Monte-Carlo baseline converges to the exact oracle on any
    /// circuit small enough to enumerate (a true invariant — unlike
    /// MC-vs-analytic, which legitimately diverges under reconvergence).
    #[test]
    fn mc_converges_to_exact_oracle(seed in 0u64..100) {
        use ser_suite::epp::ExactEpp;
        let c = RandomDag::new(6, 15).with_reconvergence(0.5).build(seed);
        let sim = BitSim::new(&c).unwrap();
        let mc = MonteCarlo::new(4_096).with_seed(seed);
        let oracle = ExactEpp::new();
        let site = c.node_ids().next().unwrap();
        let e = oracle.site(&c, &InputProbs::default(), site).unwrap().p_sensitized;
        let m = mc.estimate_site(&sim, site).p_sensitized;
        // 4σ at 4096 vectors is ~0.031; allow slack.
        prop_assert!((e - m).abs() < 0.05, "exact {e} vs mc {m}");
    }
}
