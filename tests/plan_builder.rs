//! The reverse-topological cone-plan builder must be **bit-identical**
//! to the retained per-site-DFS reference builder — same arena, same
//! packed refs, same observe refs, same budget decisions — for every
//! circuit shape, at every thread count. This is the contract that
//! lets the sweep engine compile plans through the fast merge builder
//! while the DFS builder stays the semantic definition.
//!
//! (The downstream identity — the 4-wide plan kernel vs
//! `site_with_workspace` — is proptest-enforced separately in
//! `tests/sweep_equivalence.rs`.)

use proptest::prelude::*;
use ser_suite::gen::RandomDag;
use ser_suite::netlist::{Circuit, ConePlans, TopoArtifacts};

fn dag_strategy() -> impl Strategy<Value = (usize, usize, f64, f64, u64)> {
    (
        2usize..8,   // inputs
        3usize..120, // gates
        0.0f64..1.0, // reconvergence
        0.0f64..0.5, // xor fraction
        0u64..1_000, // seed
    )
}

fn build_dag(inputs: usize, gates: usize, reconv: f64, xf: f64, seed: u64) -> Circuit {
    RandomDag::new(inputs, gates)
        .with_reconvergence(reconv)
        .with_xor_fraction(xf)
        .build(seed)
}

/// Asserts both builders agree on `circuit` for 1 and N worker
/// threads, and that the bounded-budget decision (decline below the
/// true member total, identical arena at it) matches too.
fn assert_builders_agree(circuit: &Circuit) {
    let topo = TopoArtifacts::compute(circuit).unwrap();
    let reference = ConePlans::build_reference(circuit, &topo);
    let total = reference.total_members();
    for threads in [1usize, 4] {
        let merged = ConePlans::build_bounded_with_threads(circuit, &topo, usize::MAX, threads)
            .expect("unbounded build cannot decline");
        assert_eq!(merged, reference, "{} ({threads} threads)", circuit.name());

        // Budget semantics: both decline below the exact total…
        assert!(
            ConePlans::build_bounded_with_threads(circuit, &topo, total - 1, threads).is_none(),
            "{}: merge builder must decline under budget",
            circuit.name()
        );
        assert!(
            ConePlans::build_reference_bounded_with_threads(circuit, &topo, total - 1, threads)
                .is_none(),
            "{}: reference builder must decline under budget",
            circuit.name()
        );
        // …and both accept (identically) at it.
        let at_budget = ConePlans::build_bounded_with_threads(circuit, &topo, total, threads)
            .expect("exact budget fits");
        assert_eq!(at_budget, reference, "{} at budget", circuit.name());
    }
}

/// Sequential circuits: DFF-clipped cones, flip-flop observe points,
/// feedback through state — deterministically covered.
#[test]
fn sequential_circuits_bit_identical() {
    use ser_suite::gen::{accumulator, iscas89_like, lfsr, shift_register};
    for c in [
        shift_register(8),
        lfsr(&[7, 5, 4, 3]),
        accumulator(4),
        iscas89_like("s298").unwrap(),
        iscas89_like("s953").unwrap(),
    ] {
        assert_builders_agree(&c);
    }
}

/// A chain above the parallel-build threshold: cone sizes from the
/// whole chain down to 1, exercising range stitching in both builders
/// and the merge builder's single-successor copy path.
#[test]
fn long_chain_above_parallel_threshold() {
    let stages = 1200;
    let mut src = String::from("INPUT(x0)\n");
    for i in 0..stages {
        src.push_str(&format!("INPUT(s{i})\n"));
    }
    src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
    for i in 0..stages {
        let prev = if i == 0 {
            "x0".to_owned()
        } else {
            format!("g{}", i - 1)
        };
        src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
    }
    let c = ser_suite::netlist::parse_bench(&src, "chain").unwrap();
    assert_builders_agree(&c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random DAGs spanning tree-like to densely reconvergent, XOR-light
    /// to XOR-heavy: the merge builder's k-way dedup merge must
    /// reproduce the DFS cone discovery exactly, including the budget
    /// decision, at 1 and N threads.
    #[test]
    fn random_dags_bit_identical((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build_dag(inputs, gates, reconv, xf, seed);
        assert_builders_agree(&c);
    }
}
