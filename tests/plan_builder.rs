//! The suffix-shared cone-plan arena must plan **exactly** the cones
//! the retained per-site-DFS reference builder plans — same members in
//! the same order, same fanin classification, same observe refs, same
//! deterministic budget decisions — for every circuit shape, at every
//! thread count. Both representations materialize to [`SitePlan`]s,
//! which is where the comparison happens: the arena stores chain tails
//! once, the flat reference stores every cone in full, and the
//! materialized plans must be indistinguishable.
//!
//! (The downstream identity — the 4-wide plan kernel vs
//! `site_with_workspace` — is proptest-enforced separately in
//! `tests/sweep_equivalence.rs`.)

use proptest::prelude::*;
use ser_suite::gen::RandomDag;
use ser_suite::netlist::{Circuit, ConePlans, FlatConePlans, TopoArtifacts};

fn dag_strategy() -> impl Strategy<Value = (usize, usize, f64, f64, u64)> {
    (
        2usize..8,   // inputs
        3usize..120, // gates
        0.0f64..1.0, // reconvergence
        0.0f64..0.5, // xor fraction
        0u64..1_000, // seed
    )
}

fn build_dag(inputs: usize, gates: usize, reconv: f64, xf: f64, seed: u64) -> Circuit {
    RandomDag::new(inputs, gates)
        .with_reconvergence(reconv)
        .with_xor_fraction(xf)
        .build(seed)
}

/// Asserts the suffix-shared arena and the flat DFS reference plan the
/// identical cones on `circuit` for 1 and N worker threads, and that
/// each builder's budget decision is deterministic against its own
/// member accounting (stored members for the arena, logical members
/// for the flat layout).
fn assert_builders_agree(circuit: &Circuit) {
    let topo = TopoArtifacts::compute(circuit).unwrap();
    let reference = FlatConePlans::build_bounded_with_threads(circuit, &topo, usize::MAX, 1)
        .expect("unbounded build cannot decline");
    let logical = reference.total_members();
    for threads in [1usize, 4] {
        let shared = ConePlans::build_bounded_with_threads(circuit, &topo, usize::MAX, threads)
            .expect("unbounded build cannot decline");
        assert_eq!(
            shared.logical_members(),
            logical as u64,
            "{} ({threads} threads): logical member accounting",
            circuit.name()
        );
        assert!(
            shared.stored_members() <= logical,
            "{}: sharing cannot store more than the flat layout",
            circuit.name()
        );
        for site in circuit.node_ids() {
            assert_eq!(
                shared.plan(site).materialize(circuit),
                reference.plan(site).materialize(),
                "{} ({threads} threads): site {site}",
                circuit.name()
            );
        }

        // Budget semantics, arena side: the budget counts *stored*
        // (deduplicated) members, declines below the exact count and
        // accepts identically at it — independent of thread count.
        let stored = shared.stored_members();
        if stored > 0 {
            assert!(
                ConePlans::build_bounded_with_threads(circuit, &topo, stored - 1, threads)
                    .is_none(),
                "{}: arena builder must decline under its stored-member budget",
                circuit.name()
            );
        }
        let at_budget = ConePlans::build_bounded_with_threads(circuit, &topo, stored, threads)
            .expect("exact budget fits");
        assert_eq!(at_budget, shared, "{} at budget", circuit.name());

        // Budget semantics, flat side: counts logical members.
        if logical > 0 {
            assert!(
                FlatConePlans::build_bounded_with_threads(circuit, &topo, logical - 1, threads)
                    .is_none(),
                "{}: flat builder must decline under its logical-member budget",
                circuit.name()
            );
        }
        assert!(
            FlatConePlans::build_bounded_with_threads(circuit, &topo, logical, threads).is_some(),
            "{}: flat builder accepts at its exact total",
            circuit.name()
        );
    }
}

/// Sequential circuits: DFF-clipped cones, flip-flop observe points,
/// feedback through state — deterministically covered.
#[test]
fn sequential_circuits_identical_plans() {
    use ser_suite::gen::{accumulator, iscas89_like, lfsr, shift_register};
    for c in [
        shift_register(8),
        lfsr(&[7, 5, 4, 3]),
        accumulator(4),
        iscas89_like("s298").unwrap(),
        iscas89_like("s953").unwrap(),
    ] {
        assert_builders_agree(&c);
    }
}

/// A chain above the parallel-build threshold: cone sizes from the
/// whole chain down to 1, exercising tail-range stitching in the pack
/// phase and the arena's chain-node fast path. Because every `g{i}`
/// has two fanouts downstream of the AND gates' `s{i}` side inputs,
/// the circuit mixes long shared suffixes with per-site prefixes.
#[test]
fn long_chain_above_parallel_threshold() {
    let stages = 1200;
    let mut src = String::from("INPUT(x0)\n");
    for i in 0..stages {
        src.push_str(&format!("INPUT(s{i})\n"));
    }
    src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
    for i in 0..stages {
        let prev = if i == 0 {
            "x0".to_owned()
        } else {
            format!("g{}", i - 1)
        };
        src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
    }
    let c = ser_suite::netlist::parse_bench(&src, "chain").unwrap();
    let topo = TopoArtifacts::compute(&c).unwrap();
    let shared = ConePlans::build(&c, &topo);
    // A pure single-output chain is the best case for suffix sharing:
    // the logical sum-of-cones is quadratic in the stage count while
    // the arena stays linear.
    assert!(
        shared.logical_members() > 100 * shared.stored_members() as u64,
        "chain should dedup by orders of magnitude: {} logical vs {} stored",
        shared.logical_members(),
        shared.stored_members()
    );
    assert_builders_agree(&c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random DAGs spanning tree-like to densely reconvergent, XOR-light
    /// to XOR-heavy: the arena's anchor/chain classification and k-way
    /// dedup merge must reproduce the DFS cone discovery exactly,
    /// including each builder's budget decision, at 1 and N threads.
    #[test]
    fn random_dags_identical_plans((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build_dag(inputs, gates, reconv, xf, seed);
        assert_builders_agree(&c);
    }
}
