//! Loopback TCP integration tests: the std-only front door must serve
//! the same bytes the in-process API computes — concurrently, with
//! streaming frames, auth, quotas, and a graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ser_suite::epp::AnalysisSession;
use ser_suite::netlist::{parse_bench, Circuit};
use ser_suite::service::json::{self, JsonValue};
use ser_suite::service::{
    serve, EngineConfig, ProtocolEngine, Request, SerService, SerServiceConfig, SweepRequest,
    TcpShutdownHandle, TcpTransport,
};

/// A running loopback server and the service it fronts.
struct Server {
    addr: std::net::SocketAddr,
    handle: TcpShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    service: Arc<SerService>,
}

impl Server {
    fn start(config: EngineConfig) -> Server {
        let service = Arc::new(SerService::new(SerServiceConfig {
            max_sessions: 4,
            threads: 2,
            sweep_batch_sites: 8,
            max_sweep_responses: 8,
            plan_cache_dir: None,
            plan_cache_max_bytes: None,
            ..SerServiceConfig::default()
        }));
        let engine = Arc::new(ProtocolEngine::new(Arc::clone(&service), config));
        let mut transport = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
        let addr = transport.local_addr();
        let handle = transport.shutdown_handle();
        let thread = std::thread::spawn(move || serve(&mut transport, &engine));
        Server {
            addr,
            handle,
            thread: Some(thread),
            service,
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(self.addr).expect("connect loopback");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("read frame") > 0,
            "server closed the connection unexpectedly"
        );
        json::parse_value(line.trim_end()).unwrap_or_else(|e| panic!("bad frame `{line}`: {e}"))
    }

    /// Reads frames until the final `result`/`error` of one request;
    /// returns `(progress_and_chunk_frames, final_frame)`.
    fn recv_reply(&mut self) -> (Vec<JsonValue>, JsonValue) {
        let mut streamed = Vec::new();
        loop {
            let frame = self.recv();
            match frame.get("frame").and_then(JsonValue::as_str) {
                Some("progress" | "chunk") => streamed.push(frame),
                Some("result" | "error") => return (streamed, frame),
                other => panic!("unexpected frame kind {other:?}: {frame}"),
            }
        }
    }

    /// True once the server has closed the stream (EOF).
    fn at_eof(&mut self) -> bool {
        let mut line = String::new();
        matches!(self.reader.read_line(&mut line), Ok(0))
    }
}

fn write_netlist(name: &str, text: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ser_net_{}_{name}.bench", std::process::id()));
    std::fs::write(&path, text).unwrap();
    path
}

fn load(path: &PathBuf, name: &str) -> Circuit {
    parse_bench(&std::fs::read_to_string(path).unwrap(), name).unwrap()
}

const TOY: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n";

/// The acceptance scenario: a sweep served over loopback TCP is
/// bit-identical to `SerService::submit` in-process, with two clients
/// hammering the same server concurrently.
#[test]
fn concurrent_tcp_clients_match_in_process_bitwise() {
    let s298 = write_netlist("s298", {
        use ser_suite::netlist::write_bench;
        &write_bench(&ser_suite::gen::iscas89_like("s298").unwrap())
    });
    let toy = write_netlist("toy", TOY);
    let server = Server::start(EngineConfig::default());

    // In-process references, computed on an independent service.
    let reference = SerService::with_defaults();
    let c_s298: Arc<Circuit> = Arc::new(load(&s298, "s298"));
    let c_toy: Arc<Circuit> = Arc::new(load(&toy, "toy"));
    let sweep_s298 = reference
        .submit(&c_s298, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let sweep_toy = reference
        .submit(&c_toy, Request::Sweep(SweepRequest::default()))
        .unwrap();

    let clients: Vec<_> = [(&s298, &c_s298, &sweep_s298), (&toy, &c_toy, &sweep_toy)]
        .into_iter()
        .enumerate()
        .map(|(i, (path, circuit, expected))| {
            let path = path.to_str().unwrap().to_owned();
            let circuit = Arc::clone(circuit);
            let expected_sweep = expected.as_sweep().unwrap().p_sensitized().to_vec();
            let mut client = server.connect();
            std::thread::spawn(move || {
                // Chunked whole-circuit sweep: every per-site value.
                client.send(&format!(
                    r#"{{"v": 2, "id": "c{i}", "op": "sweep", "netlist": "{path}", "chunk_sites": 16, "top": 0}}"#
                ));
                let (streamed, result) = client.recv_reply();
                assert_eq!(
                    result.get("frame").and_then(JsonValue::as_str),
                    Some("result"),
                    "{result}"
                );
                assert_eq!(
                    result.get("nodes").and_then(JsonValue::as_count),
                    Some(circuit.len() as u64)
                );
                let mut wire: Vec<f64> = Vec::new();
                for frame in &streamed {
                    let JsonValue::Arr(sites) = frame.get("sites").unwrap() else {
                        panic!("chunk sites");
                    };
                    for site in sites {
                        wire.push(site.get("p_sensitized").and_then(JsonValue::as_f64).unwrap());
                    }
                }
                assert_eq!(wire.len(), expected_sweep.len());
                for (pos, (w, e)) in wire.iter().zip(&expected_sweep).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        e.to_bits(),
                        "site {pos}: TCP sweep != in-process submit"
                    );
                }
                // A handful of single-site requests, same identity.
                for (pos, site) in circuit.node_ids().enumerate().take(5) {
                    client.send(&format!(
                        r#"{{"v": 2, "op": "site", "netlist": "{path}", "node": "{}"}}"#,
                        circuit.node(site).name()
                    ));
                    let (_, result) = client.recv_reply();
                    let expected = AnalysisSession::new(Arc::clone(&circuit))
                        .unwrap()
                        .site(site)
                        .p_sensitized();
                    assert_eq!(
                        result
                            .get("p_sensitized")
                            .and_then(JsonValue::as_f64)
                            .unwrap()
                            .to_bits(),
                        expected.to_bits(),
                        "site {pos}"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // The in-process half of the acceptance check once more, against
    // the *server's* service: same arena the wire values came from.
    let via_server = server
        .service
        .submit(&c_s298, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(
        via_server.as_sweep().unwrap(),
        sweep_s298.as_sweep().unwrap()
    );
    for p in [&s298, &toy] {
        let _ = std::fs::remove_file(p);
    }
}

/// A sequential Monte-Carlo request over TCP streams at least two
/// progress frames before its final frame (the acceptance criterion),
/// and the final estimate matches the in-process call bitwise.
#[test]
fn sequential_monte_carlo_streams_over_tcp() {
    let toy = write_netlist("mc", TOY);
    let path = toy.to_str().unwrap();
    let server = Server::start(EngineConfig::default());
    let mut client = server.connect();
    client.send(&format!(
        r#"{{"v": 2, "id": "m", "op": "monte_carlo", "netlist": "{path}", "node": "a", "target_error": 0.04, "seed": 5}}"#
    ));
    let (streamed, result) = client.recv_reply();
    let progress: Vec<_> = streamed
        .iter()
        .filter(|f| f.get("frame").and_then(JsonValue::as_str) == Some("progress"))
        .collect();
    assert!(
        progress.len() >= 2,
        "got {} progress frames: {streamed:?}",
        progress.len()
    );

    let circuit: Arc<Circuit> = Arc::new(load(&toy, "mc"));
    let direct = server
        .service
        .submit(
            &circuit,
            Request::MonteCarlo(ser_suite::service::MonteCarloRequest {
                site: circuit.find("a").unwrap(),
                vectors: 10_000,
                target_error: Some(0.04),
                seed: 5,
            }),
        )
        .unwrap();
    let direct = direct.as_monte_carlo().unwrap();
    assert_eq!(
        result.get("vectors").and_then(JsonValue::as_count),
        Some(direct.vectors)
    );
    assert_eq!(
        result
            .get("p_sensitized")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        direct.p_sensitized.to_bits()
    );
    let _ = std::fs::remove_file(&toy);
}

/// Auth handshake, per-client quota, and the v1 shim over TCP.
#[test]
fn auth_quota_and_v1_shim_over_tcp() {
    let toy = write_netlist("authq", TOY);
    let path = toy.to_str().unwrap();
    let server = Server::start(EngineConfig {
        auth_token: Some("sesame".to_owned()),
        quota: Some(2),
        max_inflight: 2,
    });

    // No hello: refused and closed.
    let mut client = server.connect();
    client.send(r#"{"v": 2, "op": "stats"}"#);
    let (_, err) = client.recv_reply();
    assert_eq!(
        err.get("error")
            .unwrap()
            .get("code")
            .and_then(JsonValue::as_str),
        Some("unauthorized")
    );
    assert!(client.at_eof(), "connection closed after auth failure");

    // Hello + two ops (the quota), third refused and closed. The v1
    // shim works over TCP too once authed.
    let mut client = server.connect();
    client.send(r#"{"v": 2, "op": "hello", "token": "sesame"}"#);
    let (_, hello) = client.recv_reply();
    assert_eq!(hello.get("op").and_then(JsonValue::as_str), Some("hello"));
    client.send(&format!(
        r#"{{"op": "site", "netlist": "{path}", "node": "y"}}"#
    ));
    let v1 = client.recv();
    assert!(v1.get("frame").is_none(), "v1 reply has no envelope: {v1}");
    assert_eq!(v1.get("op").and_then(JsonValue::as_str), Some("site"));
    client.send(r#"{"v": 2, "op": "stats"}"#);
    let (_, stats) = client.recv_reply();
    assert_eq!(stats.get("op").and_then(JsonValue::as_str), Some("stats"));
    client.send(r#"{"v": 2, "op": "stats"}"#);
    let (_, refused) = client.recv_reply();
    assert_eq!(
        refused
            .get("error")
            .unwrap()
            .get("code")
            .and_then(JsonValue::as_str),
        Some("quota_exceeded")
    );
    assert!(client.at_eof(), "connection closed after quota");
    let _ = std::fs::remove_file(&toy);
}

/// Garbage and truncated lines get structured error frames without
/// killing the connection or the server.
#[test]
fn malformed_tcp_lines_get_error_frames() {
    let toy = write_netlist("garbage", TOY);
    let path = toy.to_str().unwrap();
    let server = Server::start(EngineConfig::default());
    let mut client = server.connect();
    for bad in [
        "not json",
        r#"{"v": 2, "op": "sweep", "netlist": "x""#, // truncated
        r#"{"v": 9, "op": "stats"}"#,
    ] {
        client.send(bad);
        let (_, err) = client.recv_reply();
        assert_eq!(
            err.get("frame").and_then(JsonValue::as_str),
            Some("error"),
            "{err}"
        );
    }
    // Still serving afterwards.
    client.send(&format!(
        r#"{{"v": 2, "op": "site", "netlist": "{path}", "node": "y"}}"#
    ));
    let (_, ok) = client.recv_reply();
    assert_eq!(ok.get("frame").and_then(JsonValue::as_str), Some("result"));
    let _ = std::fs::remove_file(&toy);
}

/// Graceful shutdown: the serve loop returns, in-flight connections
/// close, and the port stops accepting.
#[test]
fn graceful_shutdown_joins_the_server() {
    let server = Server::start(EngineConfig::default());
    let addr = server.addr;
    // An idle connection is open when shutdown arrives.
    let idle = server.connect();
    server.handle.shutdown();
    let mut server = server;
    let result = server
        .thread
        .take()
        .unwrap()
        .join()
        .expect("serve thread joins");
    result.expect("serve returns cleanly");
    drop(idle);
    // New connections are not served: either refused outright, or
    // accepted by the OS backlog and immediately closed.
    if let Ok(stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "not served");
    }
}

/// Idle-connection reaping: a silent client is closed once the idle
/// timeout passes, the reap is counted in service stats, and clients
/// that keep talking are untouched.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let toy = write_netlist("idle", TOY);
    let path = toy.to_str().unwrap();

    // Hand-rolled server so the transport gets an idle timeout.
    let service = Arc::new(SerService::new(SerServiceConfig {
        max_sessions: 4,
        threads: 2,
        ..SerServiceConfig::default()
    }));
    let engine = Arc::new(ProtocolEngine::new(
        Arc::clone(&service),
        EngineConfig::default(),
    ));
    let mut transport = TcpTransport::bind("127.0.0.1:0")
        .expect("bind loopback")
        .with_idle_timeout(Duration::from_millis(250), service.idle_reap_counter());
    let addr = transport.local_addr();
    let handle = transport.shutdown_handle();
    let thread = std::thread::spawn(move || serve(&mut transport, &engine));

    let connect = || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    };

    // A served request, then silence: the server closes the stream
    // (the blocking read below is the synchronization — no sleeps).
    let mut idle = connect();
    idle.send(&format!(
        r#"{{"v": 2, "op": "site", "netlist": "{path}", "node": "y"}}"#
    ));
    let (_, result) = idle.recv_reply();
    assert_eq!(
        result.get("frame").and_then(JsonValue::as_str),
        Some("result")
    );
    assert!(idle.at_eof(), "idle connection reaped via EOF");
    assert_eq!(service.stats().idle_reaped, 1);

    // The server is still serving, and the count travels the wire.
    let mut live = connect();
    live.send(r#"{"v": 2, "op": "stats"}"#);
    let (_, stats) = live.recv_reply();
    assert_eq!(
        stats.get("idle_reaped").and_then(JsonValue::as_count),
        Some(1)
    );

    handle.shutdown();
    thread.join().expect("serve thread").expect("serve returns");
    let _ = std::fs::remove_file(&toy);
}
