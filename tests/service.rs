//! Integration tests for the `SerService` batch front-end and the
//! owned-session API it rides on: LRU eviction/reuse semantics,
//! cross-thread session sharing, and bit-identical equivalence of
//! service responses vs direct owned-session calls.

use std::sync::Arc;

use ser_suite::epp::{AnalysisSession, PolarityMode};
use ser_suite::gen::{c17, iscas89_like, ripple_carry_adder};
use ser_suite::netlist::Circuit;
use ser_suite::service::{
    MonteCarloRequest, MultiCycleMcRequest, MultiCycleRequest, Request, ResponsePayload,
    SerService, SerServiceConfig, ServiceError, SiteRequest, SweepRequest,
};
use ser_suite::sim::{MonteCarlo, SequentialMonteCarlo};

fn arc(c: Circuit) -> Arc<Circuit> {
    Arc::new(c)
}

/// The owned session is what the service relies on: cheap to clone,
/// shareable across threads, `'static`.
#[test]
fn owned_sessions_are_send_sync_and_cheaply_cloneable() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<AnalysisSession>();
    assert_send_sync::<SerService>();

    let circuit = arc(c17());
    let session = Arc::new(AnalysisSession::new(Arc::clone(&circuit)).unwrap());
    // A clone shares the compiled artifacts and scratch pool — and a
    // clone taken BEFORE the first simulator use still shares the one
    // eventual BitSim compilation (the OnceLock cell is shared, not
    // copied empty).
    let clone = AnalysisSession::clone(&session);
    assert!(Arc::ptr_eq(session.topo(), clone.topo()));
    assert!(std::ptr::eq(
        session.workspace_pool(),
        clone.workspace_pool()
    ));
    assert!(
        std::ptr::eq(session.bit_sim(), clone.bit_sim()),
        "clones share one compiled simulator"
    );
    // And the session handle itself moves across threads.
    let handle = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || session.sweep(1))
    };
    let theirs = handle.join().unwrap();
    assert_eq!(theirs, session.sweep(1), "cross-thread sweep identical");
}

/// Service sweep responses are bit-identical to direct session calls,
/// even though the service re-partitions the sweep into executor jobs.
#[test]
fn service_sweep_is_bit_identical_to_direct_session() {
    for circuit in [
        arc(c17()),
        arc(ripple_carry_adder(8)),
        arc(iscas89_like("s298").unwrap()),
    ] {
        let service = SerService::new(SerServiceConfig {
            max_sessions: 4,
            threads: 4,
            sweep_batch_sites: 10, // force many parts per sweep
            max_sweep_responses: 32,
            plan_cache_dir: None,
            plan_cache_max_bytes: None,
            ..SerServiceConfig::default()
        });
        let response = service
            .submit(&circuit, Request::Sweep(SweepRequest::default()))
            .unwrap();
        let sweep = response.as_sweep().unwrap();

        let direct = AnalysisSession::new(Arc::clone(&circuit)).unwrap();
        for threads in [1, 4] {
            assert_eq!(
                sweep,
                &direct.sweep(threads),
                "{}: service vs direct ({threads} threads)",
                circuit.name()
            );
        }

        // Single-site and Monte-Carlo requests too.
        let site = circuit.node_ids().last().unwrap();
        let via_service = service
            .submit(&circuit, Request::Site(SiteRequest { site }))
            .unwrap();
        assert_eq!(via_service.as_site().unwrap(), &direct.site(site));

        let mc_req = MonteCarloRequest {
            site,
            vectors: 4_096,
            target_error: None,
            seed: 11,
        };
        let via_service = service
            .submit(&circuit, Request::MonteCarlo(mc_req))
            .unwrap();
        let mc = MonteCarlo::new(4_096).with_seed(11);
        assert_eq!(
            via_service.as_monte_carlo().unwrap(),
            &direct.monte_carlo_site(&mc, site)
        );

        // Sequential (Mendo) Monte-Carlo goes through the same rule.
        let seq_req = MonteCarloRequest {
            site,
            vectors: 1 << 16,
            target_error: Some(0.1),
            seed: 11,
        };
        let via_service = service
            .submit(&circuit, Request::MonteCarlo(seq_req))
            .unwrap();
        let rule = SequentialMonteCarlo::new(0.1)
            .with_seed(11)
            .with_max_vectors(1 << 16);
        assert_eq!(
            via_service.as_monte_carlo().unwrap(),
            &rule.estimate_site(direct.bit_sim(), site)
        );
    }
}

/// Warm-cache behavior: hits on resubmission, LRU eviction at
/// capacity, and recency updates.
#[test]
fn lru_reuses_and_evicts_sessions() {
    let a = arc(c17());
    let b = arc(ripple_carry_adder(4));
    let c = arc(iscas89_like("s298").unwrap());
    let service = SerService::new(SerServiceConfig {
        max_sessions: 2,
        threads: 2,
        sweep_batch_sites: 64,
        max_sweep_responses: 32,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    });

    // Compile a and b (2 misses), then hit both.
    let (sa1, warm_a1) = service.session(&a).unwrap();
    let (sb1, warm_b1) = service.session(&b).unwrap();
    assert!(!warm_a1 && !warm_b1);
    let (sa2, warm_a2) = service.session(&a).unwrap();
    assert!(warm_a2, "second lookup is warm");
    assert!(Arc::ptr_eq(&sa1, &sa2), "the very same session object");

    // Touch order is now b, a (a most recent). Adding c evicts b.
    let (_, warm_c) = service.session(&c).unwrap();
    assert!(!warm_c);
    let stats = service.stats();
    assert_eq!(stats.session_misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.sessions_cached, 2);

    // a survived (recently used), b was evicted and recompiles.
    let (sa3, warm_a3) = service.session(&a).unwrap();
    assert!(warm_a3);
    assert!(Arc::ptr_eq(&sa1, &sa3));
    let (sb2, warm_b2) = service.session(&b).unwrap();
    assert!(!warm_b2, "b was the LRU victim");
    assert!(!Arc::ptr_eq(&sb1, &sb2), "recompiled session");
    assert_eq!(service.stats().evictions, 2, "c evicted in turn");
}

/// The acceptance scenario: one service, two distinct circuits, sweeps
/// submitted concurrently from multiple threads against the warm
/// cache — every response bit-identical to a direct session call.
#[test]
fn serves_two_circuits_concurrently_from_warm_cache() {
    let a = arc(iscas89_like("s298").unwrap());
    let b = arc(ripple_carry_adder(8));
    let service = Arc::new(SerService::new(SerServiceConfig {
        max_sessions: 4,
        threads: 4,
        sweep_batch_sites: 16,
        max_sweep_responses: 32,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    }));
    // Warm both circuits.
    service.session(&a).unwrap();
    service.session(&b).unwrap();

    let expected_a = AnalysisSession::new(Arc::clone(&a)).unwrap().sweep(1);
    let expected_b = AnalysisSession::new(Arc::clone(&b)).unwrap().sweep(1);

    // One interleaved batch mixing both circuits…
    let responses = service.submit_batch(vec![
        (Arc::clone(&a), Request::Sweep(SweepRequest::default())),
        (Arc::clone(&b), Request::Sweep(SweepRequest::default())),
        (Arc::clone(&a), Request::Sweep(SweepRequest::default())),
    ]);
    for (i, expected) in [&expected_a, &expected_b, &expected_a].iter().enumerate() {
        let r = responses[i].as_ref().unwrap();
        assert!(r.meta.warm_session, "response {i} came from the warm cache");
        assert_eq!(r.as_sweep().unwrap(), *expected, "response {i}");
    }

    // …and genuinely concurrent submitters sharing the service.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let service = Arc::clone(&service);
            let circuit = if i % 2 == 0 {
                Arc::clone(&a)
            } else {
                Arc::clone(&b)
            };
            std::thread::spawn(move || {
                service
                    .submit(&circuit, Request::Sweep(SweepRequest::default()))
                    .unwrap()
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.join().unwrap();
        let expected = if i % 2 == 0 { &expected_a } else { &expected_b };
        assert!(r.meta.warm_session);
        assert_eq!(r.as_sweep().unwrap(), expected, "submitter {i}");
    }
}

/// Multi-cycle requests through the service match the direct engines,
/// including the Mendo sequential-stopping simulation leg.
#[test]
fn multi_cycle_request_matches_direct_engines() {
    let circuit = arc(iscas89_like("s298").unwrap());
    let service = SerService::with_defaults();
    let site = circuit.find("G0").unwrap();
    let request = MultiCycleRequest {
        site,
        cycles: 3,
        monte_carlo: Some(MultiCycleMcRequest {
            runs: 2_048,
            target_error: Some(0.2),
            seed: 9,
        }),
    };
    let response = service
        .submit(&circuit, Request::MultiCycle(request))
        .unwrap();
    let ResponsePayload::MultiCycle {
        analytic,
        monte_carlo,
    } = &response.payload
    else {
        panic!("multi-cycle payload expected");
    };

    let session = AnalysisSession::new(Arc::clone(&circuit)).unwrap();
    assert_eq!(analytic, &session.multi_cycle().site(site, 3));
    let direct = ser_suite::epp::multi_cycle_monte_carlo_sequential(
        Arc::clone(&circuit),
        site,
        3,
        0.2,
        2_048,
        9,
    )
    .unwrap();
    assert_eq!(monte_carlo.as_ref().unwrap(), &direct);
}

/// Sweep over an explicit site subset and an explicit polarity.
#[test]
fn subset_sweep_with_polarity() {
    let circuit = arc(c17());
    let service = SerService::with_defaults();
    let sites: Vec<_> = circuit.node_ids().take(4).collect();
    let response = service
        .submit(
            &circuit,
            Request::Sweep(SweepRequest {
                sites: Some(sites.clone()),
                polarity: PolarityMode::Merged,
            }),
        )
        .unwrap();
    let sweep = response.as_sweep().unwrap();
    assert_eq!(sweep.sites(), sites.as_slice());

    let session = AnalysisSession::new(Arc::clone(&circuit)).unwrap();
    let direct =
        session
            .epp()
            .sweep_sites_with(&sites, PolarityMode::Merged, 1, session.workspace_pool());
    assert_eq!(sweep, &direct);
}

/// The cross-request sweep-response cache: repeat whole-circuit sweeps
/// are served from the cache (same `Arc`, no copy), the key includes
/// polarity, subset sweeps bypass it, and `set_inputs` both purges the
/// netlist's entries and yields new (correct) results.
#[test]
fn sweep_response_cache_hits_and_invalidates() {
    use ser_suite::sp::InputProbs;

    let circuit = arc(iscas89_like("s298").unwrap());
    let service = SerService::with_defaults();

    let r1 = service
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let stats = service.stats();
    assert_eq!(stats.sweep_cache_misses, 1);
    assert_eq!(stats.sweep_cache_hits, 0);
    assert_eq!(stats.sweep_responses_cached, 1);

    let r2 = service
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(service.stats().sweep_cache_hits, 1);
    assert_eq!(r2.as_sweep().unwrap(), r1.as_sweep().unwrap());
    // Served without copying: the very same arena.
    let (ResponsePayload::Sweep(a1), ResponsePayload::Sweep(a2)) = (&r1.payload, &r2.payload)
    else {
        panic!("sweep payloads expected");
    };
    assert!(Arc::ptr_eq(a1, a2), "cache hit shares the arena");

    // Polarity is part of the key: a merged sweep is its own entry.
    let merged = service
        .submit(
            &circuit,
            Request::Sweep(SweepRequest {
                sites: None,
                polarity: PolarityMode::Merged,
            }),
        )
        .unwrap();
    assert_eq!(service.stats().sweep_cache_misses, 2);
    assert_eq!(service.stats().sweep_responses_cached, 2);
    assert_ne!(merged.as_sweep().unwrap(), r1.as_sweep().unwrap());

    // Subset sweeps bypass the cache entirely.
    let sites: Vec<_> = circuit.node_ids().take(3).collect();
    let _ = service
        .submit(
            &circuit,
            Request::Sweep(SweepRequest {
                sites: Some(sites),
                polarity: PolarityMode::Tracked,
            }),
        )
        .unwrap();
    let stats = service.stats();
    assert_eq!(stats.sweep_cache_misses, 2, "subset sweep not counted");
    assert_eq!(stats.sweep_responses_cached, 2);

    // set_inputs: bumps the revision, purges the netlist's entries and
    // the next sweep reflects the new distribution.
    let revision = service
        .set_inputs(&circuit, InputProbs::uniform(0.9))
        .unwrap();
    assert_eq!(revision, 2);
    assert_eq!(service.stats().sweep_responses_cached, 0, "purged");

    let r3 = service
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert!(r3.meta.warm_session, "set_inputs keeps the session warm");
    assert_eq!(service.stats().sweep_cache_misses, 3);
    assert_ne!(r3.as_sweep().unwrap(), r1.as_sweep().unwrap());
    let direct = AnalysisSession::with_inputs(Arc::clone(&circuit), InputProbs::uniform(0.9))
        .unwrap()
        .sweep(1);
    assert_eq!(r3.as_sweep().unwrap(), &direct, "new inputs in force");

    // And the new-revision response is itself cached + served shared.
    let r4 = service
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(service.stats().sweep_cache_hits, 2);
    assert_eq!(r4.as_sweep().unwrap(), r3.as_sweep().unwrap());
}

/// LRU eviction must not silently revert `set_inputs`: the service
/// records the distribution per netlist hash and recompiles under it.
#[test]
fn set_inputs_survives_session_eviction() {
    use ser_suite::sp::InputProbs;

    let target = arc(iscas89_like("s298").unwrap());
    let other = arc(ripple_carry_adder(4));
    let service = SerService::new(SerServiceConfig {
        max_sessions: 1, // any second circuit evicts the first
        threads: 2,
        sweep_batch_sites: 64,
        max_sweep_responses: 8,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    });

    service
        .set_inputs(&target, InputProbs::uniform(0.8))
        .unwrap();
    let expected = AnalysisSession::with_inputs(Arc::clone(&target), InputProbs::uniform(0.8))
        .unwrap()
        .sweep(1);

    // Evict the configured session, then come back to the circuit.
    service.session(&other).unwrap();
    let response = service
        .submit(&target, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert!(!response.meta.warm_session, "session was recompiled");
    assert_eq!(
        response.as_sweep().unwrap(),
        &expected,
        "recompiled session restores the recorded inputs"
    );
}

/// `submit_streaming` reports progress without perturbing results:
/// sweep part completions arrive monotonically, sequential Monte-Carlo
/// counters stream from the worker, and the responses are identical to
/// plain `submit`.
#[test]
fn streaming_progress_observes_without_perturbing() {
    use ser_suite::service::Progress;
    use std::sync::Mutex;

    let circuit = arc(iscas89_like("s298").unwrap());
    let service = SerService::new(SerServiceConfig {
        max_sessions: 2,
        threads: 2,
        sweep_batch_sites: 16,  // force several parts
        max_sweep_responses: 0, // keep the cache out of the comparison
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    });

    // Sweep: one Progress::Sweep event per part, cumulative, ending at
    // the full site count.
    let events: Arc<Mutex<Vec<Progress>>> = Arc::default();
    let sink = {
        let events = Arc::clone(&events);
        Arc::new(move |p: Progress| events.lock().unwrap().push(p))
    };
    let streamed = service
        .submit_streaming(&circuit, Request::Sweep(SweepRequest::default()), sink)
        .unwrap();
    let direct = service
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(streamed.as_sweep().unwrap(), direct.as_sweep().unwrap());
    let events = std::mem::take(&mut *events.lock().unwrap());
    let expected_parts = circuit.len().div_ceil(16);
    assert_eq!(events.len(), expected_parts, "one event per part");
    let mut last = 0;
    for event in &events {
        let Progress::Sweep {
            sites_done,
            sites_total,
        } = event
        else {
            panic!("sweep events only: {event:?}");
        };
        assert!(*sites_done > last, "cumulative and monotonic");
        last = *sites_done;
        assert_eq!(*sites_total, circuit.len());
    }
    assert_eq!(last, circuit.len(), "final event covers every site");

    // Sequential Monte-Carlo: doubling-threshold counters, identical
    // final estimate.
    let site = circuit.find("G0").unwrap();
    let request = Request::MonteCarlo(MonteCarloRequest {
        site,
        vectors: 1 << 16,
        target_error: Some(0.05),
        seed: 13,
    });
    let events: Arc<Mutex<Vec<Progress>>> = Arc::default();
    let sink = {
        let events = Arc::clone(&events);
        Arc::new(move |p: Progress| events.lock().unwrap().push(p))
    };
    let streamed = service
        .submit_streaming(&circuit, request.clone(), sink)
        .unwrap();
    let direct = service.submit(&circuit, request).unwrap();
    assert_eq!(
        streamed.as_monte_carlo().unwrap(),
        direct.as_monte_carlo().unwrap(),
        "the observer must not perturb the estimate"
    );
    let events = std::mem::take(&mut *events.lock().unwrap());
    assert!(events.len() >= 2, "long runs stream: {events:?}");
    let mut last = 0;
    for event in &events {
        let Progress::MonteCarlo { vectors, .. } = event else {
            panic!("monte-carlo events only: {event:?}");
        };
        assert!(*vectors > last);
        last = *vectors;
    }
    assert!(last <= streamed.as_monte_carlo().unwrap().vectors);
}

/// Malformed requests come back as typed errors, not worker panics.
#[test]
fn invalid_requests_are_rejected_up_front() {
    let circuit = arc(c17());
    let service = SerService::with_defaults();
    let bogus = ser_suite::netlist::NodeId::from_index(10_000);
    let err = service
        .submit(&circuit, Request::Site(SiteRequest { site: bogus }))
        .unwrap_err();
    assert!(matches!(err, ServiceError::SiteOutOfRange { .. }), "{err}");

    let err = service
        .submit(
            &circuit,
            Request::MonteCarlo(MonteCarloRequest {
                site: circuit.node_ids().next().unwrap(),
                vectors: 100,
                target_error: Some(1.5),
                seed: 1,
            }),
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::InvalidRequest(_)), "{err}");

    // A failed job in a batch doesn't poison its neighbours.
    let results = service.submit_batch(vec![
        (
            Arc::clone(&circuit),
            Request::Site(SiteRequest { site: bogus }),
        ),
        (
            Arc::clone(&circuit),
            Request::Sweep(SweepRequest::default()),
        ),
    ]);
    assert!(results[0].is_err());
    assert_eq!(
        results[1].as_ref().unwrap().as_sweep().unwrap().len(),
        circuit.len()
    );
}

/// The persistent plan-artifact cache: a second service rooted at the
/// same cache directory loads compiled cone plans from disk instead of
/// recompiling — the stats must show the hit, and the sweep must be
/// bit-identical to the uncached one. Corrupting the entry on disk
/// degrades the next restart to a silent recompile (a miss, never an
/// error), and the damaged entry is rewritten for the restart after.
#[test]
fn plan_cache_survives_service_restart() {
    let circuit = arc(iscas89_like("s298").unwrap());
    let dir = std::env::temp_dir().join(format!("ser-service-plan-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SerServiceConfig {
        max_sessions: 2,
        threads: 2,
        sweep_batch_sites: 64,
        max_sweep_responses: 0,
        plan_cache_dir: Some(dir.clone()),
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    };

    // First process: compiles, stores, and reports no hit.
    let first = SerService::new(config.clone());
    let baseline = first
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let stats = first.stats();
    assert_eq!(stats.plan_cache_hits, 0);
    assert_eq!(stats.plan_cache_misses, 1);
    drop(first);

    // "Restart": a fresh service over the same directory loads the
    // persisted plans instead of compiling.
    let second = SerService::new(config.clone());
    let replay = second
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let stats = second.stats();
    assert_eq!(stats.plan_cache_hits, 1, "restart hits the artifact cache");
    assert_eq!(stats.plan_cache_misses, 0);
    assert_eq!(
        replay.as_sweep().unwrap(),
        baseline.as_sweep().unwrap(),
        "cached plans change nothing"
    );

    // Damage the entry: the next restart recompiles silently…
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("serplan"))
        .expect("entry persisted");
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&entry, &bytes).unwrap();
    let third = SerService::new(config.clone());
    let recompiled = third
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let stats = third.stats();
    assert_eq!(stats.plan_cache_hits, 0, "corrupt entry must not load");
    assert_eq!(stats.plan_cache_misses, 1);
    assert_eq!(recompiled.as_sweep().unwrap(), baseline.as_sweep().unwrap());
    drop(third);

    // …and the recompile repaired the entry for the next restart.
    let fourth = SerService::new(config);
    fourth
        .submit(&circuit, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(fourth.stats().plan_cache_hits, 1, "entry was rewritten");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The plan-cache byte cap: a bounded cache evicts the least-recently-
/// used entry at store time, the service counts the eviction, and the
/// evicted circuit recompiles (correctly) on the next cold start.
#[test]
fn plan_cache_byte_cap_evicts_lru_and_counts() {
    let small = arc(ripple_carry_adder(8));
    let large = arc(iscas89_like("s298").unwrap());
    let dir = std::env::temp_dir().join(format!("ser-service-cache-cap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let unbounded = SerServiceConfig {
        max_sessions: 4,
        threads: 2,
        sweep_batch_sites: 64,
        max_sweep_responses: 0,
        plan_cache_dir: Some(dir.clone()),
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    };

    // Size the entries first (the cap must fit exactly one of them).
    let sizer = SerService::new(unbounded.clone());
    sizer
        .submit(&small, Request::Sweep(SweepRequest::default()))
        .unwrap();
    sizer
        .submit(&large, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(sizer.stats().plan_cache_evictions, 0, "unbounded");
    drop(sizer);
    let entry_bytes: Vec<u64> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .collect();
    assert_eq!(entry_bytes.len(), 2, "both circuits persisted");
    let cap = *entry_bytes.iter().max().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Bounded run: the second store must push the first entry out.
    let bounded = SerService::new(SerServiceConfig {
        plan_cache_max_bytes: Some(cap),
        ..unbounded.clone()
    });
    let small_sweep = bounded
        .submit(&small, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(bounded.stats().plan_cache_evictions, 0);
    bounded
        .submit(&large, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(
        bounded.stats().plan_cache_evictions,
        1,
        "storing the second entry evicted the first"
    );
    drop(bounded);

    // Cold restart: the surviving circuit hits; the evicted one misses
    // and recompiles to the identical sweep.
    let restarted = SerService::new(SerServiceConfig {
        plan_cache_max_bytes: Some(cap),
        ..unbounded
    });
    restarted
        .submit(&large, Request::Sweep(SweepRequest::default()))
        .unwrap();
    assert_eq!(
        restarted.stats().plan_cache_hits,
        1,
        "the most recently stored entry survived the cap"
    );
    let recompiled = restarted
        .submit(&small, Request::Sweep(SweepRequest::default()))
        .unwrap();
    let stats = restarted.stats();
    assert_eq!(stats.plan_cache_hits, 1, "evicted entry cannot hit");
    assert_eq!(stats.plan_cache_misses, 1);
    assert_eq!(
        recompiled.as_sweep().unwrap(),
        small_sweep.as_sweep().unwrap(),
        "eviction costs time, never correctness"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
