//! End-to-end tests of the `ser-cli` binary: generate a benchmark,
//! inspect it, analyze it, convert it — the workflows a downstream user
//! runs first.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ser-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ser_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_info_analyze_epp_pipeline() {
    let bench = temp_path("s298.bench");

    // gen: write a synthetic benchmark.
    let out = cli()
        .args(["gen", "s298", "--seed", "3", "-o"])
        .arg(&bench)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "gen failed: {out:?}");

    // info: structural summary mentions the counts.
    let out = cli().arg("info").arg(&bench).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("119 gates"), "info said: {text}");
    assert!(text.contains("14 DFF"), "info said: {text}");

    // analyze: produces a ranking and a total.
    let out = cli()
        .args(["analyze"])
        .arg(&bench)
        .args(["--top", "5", "--threads", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total SER"), "analyze said: {text}");

    // epp: per-site detail for a named node.
    let out = cli().args(["epp"]).arg(&bench).arg("G0").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P_sensitized"), "epp said: {text}");

    let _ = std::fs::remove_file(&bench);
}

#[test]
fn convert_round_trips_formats() {
    let bench = temp_path("rt.bench");
    let verilog = temp_path("rt.v");
    let back = temp_path("rt2.bench");

    std::fs::write(
        &bench,
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\ny = XOR(u, a)\n",
    )
    .unwrap();

    let out = cli()
        .arg("convert")
        .arg(&bench)
        .arg(&verilog)
        .output()
        .unwrap();
    assert!(out.status.success(), "to verilog failed: {out:?}");
    let vtext = std::fs::read_to_string(&verilog).unwrap();
    // The module is named after the input file stem.
    assert!(vtext.starts_with("module "), "verilog: {vtext}");
    assert!(vtext.contains("nand"), "verilog: {vtext}");

    let out = cli()
        .arg("convert")
        .arg(&verilog)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success(), "to bench failed: {out:?}");
    let btext = std::fs::read_to_string(&back).unwrap();
    assert!(btext.contains("NAND"), "bench: {btext}");

    for p in [&bench, &verilog, &back] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn bad_usage_fails_with_message() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "stderr: {err}");

    let out = cli().args(["gen", "not-a-profile"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown profile"), "stderr: {err}");

    let out = cli()
        .args(["info", "/nonexistent/x.bench"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn batch_serves_jsonl_jobs_with_warm_reuse() {
    let bench = temp_path("batch_s298.bench");
    let jobs = temp_path("jobs.jsonl");
    let out = cli()
        .args(["gen", "s298", "--seed", "3", "-o"])
        .arg(&bench)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let netlist = bench.to_str().unwrap();
    std::fs::write(
        &jobs,
        format!(
            "# a comment line\n\
             {{\"op\": \"sweep\", \"netlist\": \"{netlist}\", \"top\": 2}}\n\
             \n\
             {{\"op\": \"site\", \"netlist\": \"{netlist}\", \"node\": \"G0\"}}\n\
             {{\"op\": \"monte_carlo\", \"netlist\": \"{netlist}\", \"node\": \"G0\", \"vectors\": 1000}}\n"
        ),
    )
    .unwrap();

    let out = cli()
        .args(["batch"])
        .arg(&jobs)
        .args(["--threads", "2", "--sessions", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "batch failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one response per job: {text}");
    assert!(lines[0].contains("\"op\": \"sweep\""), "{}", lines[0]);
    assert!(lines[0].contains("\"warm\": false"), "first compiles");
    assert!(lines[1].contains("\"op\": \"site\""), "{}", lines[1]);
    assert!(lines[1].contains("\"warm\": true"), "second is warm");
    assert!(lines[2].contains("\"vectors\": 1000"), "{}", lines[2]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2 warm hits"), "stats on stderr: {err}");

    // A malformed job file is rejected before anything runs.
    std::fs::write(&jobs, "{\"op\": \"warp\", \"netlist\": \"x\"}\n").unwrap();
    let out = cli().args(["batch"]).arg(&jobs).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown op"), "stderr: {err}");

    for p in [&bench, &jobs] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_exits_nonzero_when_a_job_fails() {
    let good = temp_path("ok.bench");
    let jobs = temp_path("failing_jobs.jsonl");
    std::fs::write(&good, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
    let path = good.to_str().unwrap();
    // The second job parses fine but fails the service's request
    // validation (`vectors` must be ≥ 1) — a serve-time failure, not a
    // parse-time one.
    std::fs::write(
        &jobs,
        format!(
            "{{\"op\": \"sweep\", \"netlist\": \"{path}\", \"top\": 1}}\n\
             {{\"op\": \"monte_carlo\", \"netlist\": \"{path}\", \"node\": \"y\", \"vectors\": 0}}\n"
        ),
    )
    .unwrap();
    let out = cli().args(["batch"]).arg(&jobs).output().unwrap();
    assert!(
        !out.status.success(),
        "a failed job must fail the exit code"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "both jobs still answered: {text}");
    assert!(lines[0].contains("\"op\": \"sweep\""), "{}", lines[0]);
    // The failure is a structured {code, message} object, not a bare
    // string.
    assert!(
        lines[1].contains("\"error\": {\"code\": \"bad_request\""),
        "{}",
        lines[1]
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1 of 2 jobs failed"), "stderr: {err}");

    for p in [&good, &jobs] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn serve_speaks_both_dialects_on_stdio() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let bench = temp_path("serve.bench");
    std::fs::write(
        &bench,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
    )
    .unwrap();
    let path = bench.to_str().unwrap();

    let mut child = cli()
        .args(["serve", "--threads", "2", "--quota", "5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let read_line = |stdout: &mut BufReader<_>| {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("serve answers");
        line
    };

    // A v1 job line: answered in the v1 shape.
    writeln!(
        stdin,
        "{{\"op\": \"site\", \"netlist\": \"{path}\", \"node\": \"y\"}}"
    )
    .unwrap();
    stdin.flush().unwrap();
    let v1 = read_line(&mut stdout);
    assert!(v1.contains("\"op\": \"site\""), "{v1}");
    assert!(!v1.contains("\"frame\""), "v1 reply has no envelope: {v1}");

    // A v2 envelope: framed result with the echoed id.
    writeln!(
        stdin,
        "{{\"v\": 2, \"id\": \"r1\", \"op\": \"sweep\", \"netlist\": \"{path}\", \"top\": 1}}"
    )
    .unwrap();
    stdin.flush().unwrap();
    let v2 = read_line(&mut stdout);
    assert!(v2.contains("\"frame\": \"result\""), "{v2}");
    assert!(v2.contains("\"id\": \"r1\""), "{v2}");
    assert!(v2.contains("\"warm\": true"), "session stayed warm: {v2}");

    // A structured error for a bad line.
    writeln!(stdin, "{{\"v\": 3, \"op\": \"stats\"}}").unwrap();
    stdin.flush().unwrap();
    let err = read_line(&mut stdout);
    assert!(err.contains("\"code\": \"unsupported_version\""), "{err}");

    // EOF ends the server cleanly.
    drop(stdin);
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exits 0 on EOF: {status:?}");
    let _ = std::fs::remove_file(&bench);
}
