//! End-to-end tests of the `ser-cli` binary: generate a benchmark,
//! inspect it, analyze it, convert it — the workflows a downstream user
//! runs first.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ser-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ser_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_info_analyze_epp_pipeline() {
    let bench = temp_path("s298.bench");

    // gen: write a synthetic benchmark.
    let out = cli()
        .args(["gen", "s298", "--seed", "3", "-o"])
        .arg(&bench)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "gen failed: {out:?}");

    // info: structural summary mentions the counts.
    let out = cli().arg("info").arg(&bench).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("119 gates"), "info said: {text}");
    assert!(text.contains("14 DFF"), "info said: {text}");

    // analyze: produces a ranking and a total.
    let out = cli()
        .args(["analyze"])
        .arg(&bench)
        .args(["--top", "5", "--threads", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total SER"), "analyze said: {text}");

    // epp: per-site detail for a named node.
    let out = cli().args(["epp"]).arg(&bench).arg("G0").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P_sensitized"), "epp said: {text}");

    let _ = std::fs::remove_file(&bench);
}

#[test]
fn convert_round_trips_formats() {
    let bench = temp_path("rt.bench");
    let verilog = temp_path("rt.v");
    let back = temp_path("rt2.bench");

    std::fs::write(
        &bench,
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\ny = XOR(u, a)\n",
    )
    .unwrap();

    let out = cli()
        .arg("convert")
        .arg(&bench)
        .arg(&verilog)
        .output()
        .unwrap();
    assert!(out.status.success(), "to verilog failed: {out:?}");
    let vtext = std::fs::read_to_string(&verilog).unwrap();
    // The module is named after the input file stem.
    assert!(vtext.starts_with("module "), "verilog: {vtext}");
    assert!(vtext.contains("nand"), "verilog: {vtext}");

    let out = cli()
        .arg("convert")
        .arg(&verilog)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success(), "to bench failed: {out:?}");
    let btext = std::fs::read_to_string(&back).unwrap();
    assert!(btext.contains("NAND"), "bench: {btext}");

    for p in [&bench, &verilog, &back] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn bad_usage_fails_with_message() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "stderr: {err}");

    let out = cli().args(["gen", "not-a-profile"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown profile"), "stderr: {err}");

    let out = cli()
        .args(["info", "/nonexistent/x.bench"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn batch_serves_jsonl_jobs_with_warm_reuse() {
    let bench = temp_path("batch_s298.bench");
    let jobs = temp_path("jobs.jsonl");
    let out = cli()
        .args(["gen", "s298", "--seed", "3", "-o"])
        .arg(&bench)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let netlist = bench.to_str().unwrap();
    std::fs::write(
        &jobs,
        format!(
            "# a comment line\n\
             {{\"op\": \"sweep\", \"netlist\": \"{netlist}\", \"top\": 2}}\n\
             \n\
             {{\"op\": \"site\", \"netlist\": \"{netlist}\", \"node\": \"G0\"}}\n\
             {{\"op\": \"monte_carlo\", \"netlist\": \"{netlist}\", \"node\": \"G0\", \"vectors\": 1000}}\n"
        ),
    )
    .unwrap();

    let out = cli()
        .args(["batch"])
        .arg(&jobs)
        .args(["--threads", "2", "--sessions", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "batch failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one response per job: {text}");
    assert!(lines[0].contains("\"op\": \"sweep\""), "{}", lines[0]);
    assert!(lines[0].contains("\"warm\": false"), "first compiles");
    assert!(lines[1].contains("\"op\": \"site\""), "{}", lines[1]);
    assert!(lines[1].contains("\"warm\": true"), "second is warm");
    assert!(lines[2].contains("\"vectors\": 1000"), "{}", lines[2]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2 warm hits"), "stats on stderr: {err}");

    // A malformed job file is rejected before anything runs.
    std::fs::write(&jobs, "{\"op\": \"warp\", \"netlist\": \"x\"}\n").unwrap();
    let out = cli().args(["batch"]).arg(&jobs).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown op"), "stderr: {err}");

    for p in [&bench, &jobs] {
        let _ = std::fs::remove_file(p);
    }
}
