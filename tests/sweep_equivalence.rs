//! The batched cone-plan sweep must be **bit-identical** to the
//! retained per-site reference path (`site_with_workspace`) — same
//! `P_sensitized`, same per-point tuples, same gate counts, for every
//! site, in both polarity modes, regardless of thread count. This is
//! the contract that lets the whole product run on the fast engine
//! while the slow engine stays the semantic definition.

use proptest::prelude::*;
use ser_suite::epp::{
    EppAnalysis, KernelBackend, PolarityMode, SiteWorkspace, SweepResults, WorkspacePool,
};
use ser_suite::gen::RandomDag;
use ser_suite::netlist::Circuit;
use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};

fn dag_strategy() -> impl Strategy<Value = (usize, usize, f64, f64, u64)> {
    (
        2usize..8,   // inputs
        3usize..120, // gates (crosses the single-thread threshold)
        0.0f64..1.0, // reconvergence
        0.0f64..0.5, // xor fraction
        0u64..1_000, // seed
    )
}

fn build(inputs: usize, gates: usize, reconv: f64, xf: f64, seed: u64) -> Circuit {
    RandomDag::new(inputs, gates)
        .with_reconvergence(reconv)
        .with_xor_fraction(xf)
        .build(seed)
}

/// Asserts one sweep against per-site reference passes, bit for bit.
fn assert_sweep_matches_reference(
    circuit: &Circuit,
    analysis: &EppAnalysis,
    sweep: &SweepResults,
    polarity: PolarityMode,
) {
    assert_eq!(sweep.len(), circuit.len());
    let mut ws = SiteWorkspace::new(analysis);
    for id in circuit.node_ids() {
        let reference = analysis.site_with_workspace(id, polarity, &mut ws);
        let batched = sweep.site(id);
        assert_eq!(batched.site(), reference.site());
        // `==` on f64 and on the tuple types: exact bit-identity, no
        // epsilon anywhere.
        assert_eq!(
            batched.p_sensitized(),
            reference.p_sensitized(),
            "site {id} ({polarity:?})"
        );
        assert_eq!(batched.on_path_gates(), reference.on_path_gates());
        assert_eq!(batched.per_point(), reference.per_point());
    }
}

/// Runs one full-circuit sweep under each rule-core backend and
/// asserts the SIMD run, the scalar run and the per-site reference all
/// agree bit for bit. On hosts without AVX2 the forced-AVX2 run
/// degrades to the scalar twin, so the identity (trivially) still
/// holds — the cross-backend half of this check is only meaningful on
/// x86-64, which is where CI runs it.
fn assert_backends_agree(circuit: &Circuit, analysis: &EppAnalysis, polarity: PolarityMode) {
    let pool = WorkspacePool::new();
    let sites: Vec<_> = circuit.node_ids().collect();
    let scalar =
        analysis.sweep_sites_with_backend(&sites, polarity, 1, &pool, KernelBackend::Scalar);
    let simd = analysis.sweep_sites_with_backend(
        &sites,
        polarity,
        1,
        &pool,
        KernelBackend::Avx2.sanitized(),
    );
    assert_eq!(scalar, simd, "backends diverged ({polarity:?})");
    assert_sweep_matches_reference(circuit, analysis, &scalar, polarity);
}

/// Sequential circuits (DFF-clipped cones, flip-flop observe points)
/// go through the same identity, deterministically.
#[test]
fn sequential_circuits_bit_identical() {
    use ser_suite::gen::{accumulator, iscas89_like, lfsr, shift_register};
    for c in [
        shift_register(8),
        lfsr(&[7, 5, 4, 3]),
        accumulator(4),
        iscas89_like("s298").unwrap(),
    ] {
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let pool = WorkspacePool::new();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let single = analysis.sweep_with(polarity, 1, &pool);
            let multi = analysis.sweep_with(polarity, 4, &pool);
            assert_eq!(single, multi, "{} ({polarity:?})", c.name());
            let mut ws = SiteWorkspace::new(&analysis);
            for id in c.node_ids() {
                let reference = analysis.site_with_workspace(id, polarity, &mut ws);
                let batched = single.site(id);
                assert_eq!(batched.p_sensitized(), reference.p_sensitized());
                assert_eq!(batched.per_point(), reference.per_point());
                assert_eq!(batched.on_path_gates(), reference.on_path_gates());
            }
        }
    }
}

/// Forced backends on sequential circuits: the chain/tail kernel sees
/// DFF-clipped cones and flip-flop observe points under both rule-core
/// implementations.
#[test]
fn sequential_circuits_backend_invariant() {
    use ser_suite::gen::{accumulator, iscas89_like, lfsr, shift_register};
    for c in [
        shift_register(8),
        lfsr(&[7, 5, 4, 3]),
        accumulator(4),
        iscas89_like("s298").unwrap(),
    ] {
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            assert_backends_agree(&c, &analysis, polarity);
        }
    }
}

/// Denormal and clamp-edge values through `new_clamped` on both
/// backends: inputs pinned to exact 0, exact 1, the smallest normal,
/// the smallest subnormal and 1−ε drive the rule cores into gradual
/// underflow (long AND/OR products collapse toward subnormals and
/// zero) and into the 0/1 clamp — where `max`/`min` ordering, not just
/// arithmetic, must match lane for lane.
#[test]
fn denormal_and_clamp_edge_inputs_backend_invariant() {
    let edges = [
        0.0,
        1.0,
        f64::MIN_POSITIVE, // smallest normal
        5e-324,            // smallest subnormal
        1.0 - f64::EPSILON,
        0.5,
    ];
    // Deep, reconvergent, XOR-heavy: long fused products plus the
    // shuffle-based XOR core, over several seeds so the edge values
    // land on varied gate mixes.
    for seed in [3u64, 17, 40] {
        let c = build(6, 90, 0.8, 0.3, seed);
        let mut probs = InputProbs::uniform(0.5);
        for (i, &id) in c.inputs().iter().enumerate() {
            probs = probs.with(id, edges[i % edges.len()]);
        }
        let sp = IndependentSp::new().compute(&c, &probs).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            assert_backends_agree(&c, &analysis, polarity);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SIMD sweep vs scalar sweep vs per-site reference on random
    /// DAGs: the three engines must agree bit for bit in both polarity
    /// modes. This is the backend-forcing companion of
    /// `sweep_bit_identical_to_reference` — it pins each run's rule
    /// cores instead of trusting the runtime dispatch.
    #[test]
    fn forced_backends_bit_identical((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build(inputs, gates, reconv, xf, seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            assert_backends_agree(&c, &analysis, polarity);
        }
    }

    /// Batched sweep == per-site reference, Tracked and Merged, on
    /// random DAGs spanning tree-like to densely reconvergent.
    #[test]
    fn sweep_bit_identical_to_reference((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build(inputs, gates, reconv, xf, seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let pool = WorkspacePool::new();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let sweep = analysis.sweep_with(polarity, 1, &pool);
            assert_sweep_matches_reference(&c, &analysis, &sweep, polarity);
        }
    }

    /// Thread count must not change a single bit: the scheduler's
    /// dynamic batch assignment stitches results back in site order.
    #[test]
    fn sweep_thread_count_invariant((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build(inputs, gates, reconv, xf, seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let pool = WorkspacePool::new();
        for polarity in [PolarityMode::Tracked, PolarityMode::Merged] {
            let single = analysis.sweep_with(polarity, 1, &pool);
            for threads in [2usize, 5, 8] {
                let multi = analysis.sweep_with(polarity, threads, &pool);
                prop_assert_eq!(&single, &multi, "{} threads ({:?})", threads, polarity);
            }
            // And the multi-threaded arena still matches the reference.
            let multi = analysis.sweep_with(polarity, 4, &pool);
            assert_sweep_matches_reference(&c, &analysis, &multi, polarity);
        }
    }

    /// The owned-conversion compatibility path (`all_sites*`) inherits
    /// the same identity.
    #[test]
    fn all_sites_matches_reference((inputs, gates, reconv, xf, seed) in dag_strategy()) {
        let c = build(inputs, gates, reconv, xf, seed);
        let sp = IndependentSp::new().compute(&c, &InputProbs::default()).unwrap();
        let analysis = EppAnalysis::new(&c, sp).unwrap();
        let owned = analysis.all_sites_parallel(3);
        let mut ws = SiteWorkspace::new(&analysis);
        for (id, got) in c.node_ids().zip(&owned) {
            let reference = analysis.site_with_workspace(id, PolarityMode::Tracked, &mut ws);
            prop_assert_eq!(got, &reference, "site {}", id);
        }
    }
}
