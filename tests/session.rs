//! Regression tests for the cached `AnalysisSession` layer: reusing a
//! session must be *bit-identical* to building everything from scratch,
//! and SP-only invalidation must match a full rebuild exactly.

use ser_suite::epp::{AnalysisSession, CircuitSerAnalysis, EppAnalysis, ExactEpp};
use ser_suite::gen::{c17, iscas89_like, ripple_carry_adder};
use ser_suite::netlist::Circuit;
use ser_suite::sim::{BitSim, MonteCarlo};
use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};

fn circuits() -> Vec<Circuit> {
    vec![c17(), ripple_carry_adder(4), iscas89_like("s298").unwrap()]
}

/// Session reuse returns bit-identical `P_sensitized` to fresh
/// construction — for single sites, repeated queries of the same site,
/// and the whole-circuit sweep, sequential and parallel.
#[test]
fn session_reuse_is_bit_identical_to_fresh_construction() {
    for c in circuits() {
        let session = AnalysisSession::new(&c).unwrap();

        // Fresh construction per query, the pre-session way.
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let fresh = EppAnalysis::new(&c, sp).unwrap();

        for id in c.node_ids() {
            let cached = session.site(id);
            let scratch = fresh.site(id);
            // PartialEq on SiteEpp compares every f64 exactly: this is
            // bit-identity, not an epsilon comparison.
            assert_eq!(cached, scratch, "{}: site {id}", c.name());
            // Asking the session again must not drift.
            assert_eq!(cached, session.site(id), "{}: re-query {id}", c.name());
        }

        let sweep_fresh = fresh.all_sites();
        for threads in [1, 4] {
            let sweep_cached = session.all_sites(threads);
            assert_eq!(
                sweep_cached,
                sweep_fresh,
                "{}: sweep with {threads} threads",
                c.name()
            );
        }
    }
}

/// The whole-circuit facade produces the same report through a shared
/// session as through its own one-shot path.
#[test]
fn facade_outcome_identical_through_session() {
    for c in circuits() {
        let session = AnalysisSession::new(&c).unwrap();
        let analysis = CircuitSerAnalysis::new();
        let via_session = analysis.run_with_session(&session);
        let one_shot = analysis.run(&c).unwrap();
        assert_eq!(via_session.p_sensitized(), one_shot.p_sensitized());
        assert_eq!(
            via_session.report().total(),
            one_shot.report().total(),
            "{}",
            c.name()
        );
        // Second run on the same session: still identical.
        let again = analysis.run_with_session(&session);
        assert_eq!(again.p_sensitized(), one_shot.p_sensitized());
    }
}

/// SP-only invalidation (`set_inputs`) must be indistinguishable from
/// tearing the session down and rebuilding it under the new inputs.
#[test]
fn sp_only_invalidation_matches_full_rebuild() {
    for c in circuits() {
        let first_input = c.inputs().first().copied();
        let mut probs_sequence = vec![
            InputProbs::uniform(0.3),
            InputProbs::uniform(0.8),
            InputProbs::uniform(0.5),
        ];
        if let Some(pi) = first_input {
            probs_sequence.push(InputProbs::uniform(0.5).with(pi, 0.05));
        }

        // Biased inputs slow the sequential fixed point below the
        // default 50-iteration budget on s298; both sides use the same
        // generous engine so they remain directly comparable.
        let engine = IndependentSp::new().with_max_iterations(2_000);
        let mut session = AnalysisSession::new(&c).unwrap();
        for (step, probs) in probs_sequence.into_iter().enumerate() {
            session
                .set_inputs_with_engine(probs.clone(), &engine)
                .unwrap();
            let rebuilt = AnalysisSession::with_engine(&c, probs, &engine).unwrap();
            assert_eq!(
                session.signal_probabilities().as_slice(),
                rebuilt.signal_probabilities().as_slice(),
                "{} step {step}: SP vectors must be bit-identical",
                c.name()
            );
            for id in c.node_ids() {
                assert_eq!(
                    session.site(id),
                    rebuilt.site(id),
                    "{} step {step}: site {id}",
                    c.name()
                );
            }
            assert_eq!(session.revision(), step as u64 + 2, "{}", c.name());
        }
    }
}

/// The session's shared simulator and cached schedule give the same
/// Monte-Carlo and exact-oracle answers as privately built ones.
#[test]
fn shared_simulator_matches_private_construction() {
    let c = c17();
    let session = AnalysisSession::new(&c).unwrap();
    let private_sim = BitSim::new(&c).unwrap();
    let mc = MonteCarlo::new(4_096).with_seed(11);
    let oracle = ExactEpp::new();
    for id in c.node_ids() {
        let shared = session.monte_carlo_site(&mc, id);
        let private = mc.estimate_site(&private_sim, id);
        assert_eq!(shared, private, "MC at {id}");
        let shared_exact = session.exact_site(&oracle, id).unwrap();
        let private_exact = oracle.site(&c, &InputProbs::default(), id).unwrap();
        assert_eq!(shared_exact, private_exact, "exact at {id}");
    }
}
