//! End-to-end pipeline tests: the Table 2 workload, hardening flow and
//! the sequential extension, exercised exactly as the binaries use them.

use ser_bench_harness::*;

/// Re-exported pieces under test (the bench crate is not a dependency
/// of the umbrella crate, so the pipeline is re-driven through the
/// public APIs here).
mod ser_bench_harness {
    pub use ser_suite::epp::{
        multi_cycle_monte_carlo, CircuitSerAnalysis, HardeningCost, HardeningPlan, MultiCycleEpp,
        PlatchedModel, RseuModel,
    };
    pub use ser_suite::gen::{accumulator, iscas89_like, lfsr, profile, synthesize};
    pub use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};
}

#[test]
fn table2_shape_on_small_standin() {
    // The pipeline the table2 binary runs, on the smallest profile.
    let c = iscas89_like("s298").unwrap();
    let outcome = CircuitSerAnalysis::new().run(&c).unwrap();
    // Every node got a result, timings recorded.
    assert_eq!(outcome.len(), c.len());
    assert!(outcome.epp_time().as_nanos() > 0);
    // Outputs are certainly sensitized; the total is positive.
    assert!(outcome.report().total() > 0.0);
    for &po in c.outputs() {
        assert_eq!(outcome.site(po).p_sensitized(), 1.0);
    }
}

#[test]
fn seeds_reproduce_whole_pipeline() {
    let p = profile("s344").unwrap();
    let c1 = synthesize(&p, 42);
    let c2 = synthesize(&p, 42);
    assert_eq!(c1, c2);
    let o1 = CircuitSerAnalysis::new().run(&c1).unwrap();
    let o2 = CircuitSerAnalysis::new().run(&c2).unwrap();
    assert_eq!(o1.p_sensitized(), o2.p_sensitized());
}

#[test]
fn hardening_flow_reduces_ser() {
    let c = iscas89_like("s386").unwrap();
    let outcome = CircuitSerAnalysis::new()
        .with_rseu(RseuModel::FaninScaled {
            base: 1.0,
            slope: 0.5,
        })
        .with_platched(PlatchedModel::Constant(0.2))
        .run(&c)
        .unwrap();
    let before = outcome.report().total();
    let plan = HardeningPlan::greedy(&c, outcome.report(), HardeningCost::Unit, 25.0);
    assert!(plan.removed_ser() > 0.0);
    assert!(plan.remaining_ser() < before);
    assert!(plan.spent() <= 25.0);
    // Greedy with unit costs = take the top of the ranking.
    let top: Vec<_> = outcome
        .report()
        .ranking()
        .iter()
        .take(plan.choices().len())
        .map(|e| e.node)
        .collect();
    let chosen: Vec<_> = plan.choices().iter().map(|c| c.node).collect();
    assert_eq!(top, chosen);
}

#[test]
fn sequential_extension_consistent_with_simulation() {
    // LFSR: the single output sits at the end of the shift chain, so an
    // error in the feedback takes cycles to surface.
    let c = lfsr(&[3, 2]);
    let sp = IndependentSp::new()
        .compute(&c, &InputProbs::default())
        .unwrap();
    let frames = MultiCycleEpp::new(&c, sp).unwrap();
    let fb = c.find("fb").unwrap();
    let cycles = 6;
    let analytic = frames.site(fb, cycles);
    let sim = multi_cycle_monte_carlo(&c, fb, cycles, 8_192, 7).unwrap();
    // Cycle 0: no combinational path from fb to the output q3.
    assert_eq!(analytic.cumulative[0], 0.0);
    assert_eq!(sim[0], 0.0);
    // Eventually the corrupted bit reaches q3 deterministically.
    assert!(analytic.cumulative[cycles - 1] > 0.9);
    assert!(sim[cycles - 1] > 0.9);
    // Frame-by-frame agreement within the independence approximation.
    for (k, (a, s)) in analytic.cumulative.iter().zip(&sim).enumerate() {
        assert!((a - s).abs() < 0.15, "cycle {k}: analytic {a} vs sim {s}");
    }
}

#[test]
fn accumulator_errors_persist() {
    let c = accumulator(4);
    let sp = IndependentSp::new()
        .compute(&c, &InputProbs::default())
        .unwrap();
    let frames = MultiCycleEpp::new(&c, sp).unwrap();
    // The LSB sum signal feeds q0 directly.
    let s0 = c.find("s0").unwrap();
    let r = frames.site(s0, 4);
    // q0 is a PO? No: outputs are the FF outputs q0..q3, and s0 -> q0
    // is a latched path: cycle 0 observation comes only from... the POs
    // are the FF *outputs*, whose cycle-0 values predate the strike, so
    // observation starts at cycle 1.
    assert_eq!(r.cumulative[0], 0.0);
    assert!(
        r.cumulative[1] > 0.9,
        "latched error surfaces: {:?}",
        r.cumulative
    );
}
