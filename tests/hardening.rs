//! End-to-end hardening flow: rank with the paper's method, protect
//! with TMR, prove equivalence, and re-measure vulnerability with both
//! the simulator and the exact oracle.

use ser_suite::epp::{
    check_equivalence, BddExactEpp, CircuitSerAnalysis, Equivalence, HardeningCost, HardeningPlan,
};
use ser_suite::gen::c17;
use ser_suite::netlist::harden_tmr;
use ser_suite::sim::{BitSim, MonteCarlo};
use ser_suite::sp::InputProbs;

#[test]
fn tmr_preserves_functionality() {
    use ser_suite::netlist::parse_bench;
    let c = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = NAND(a, b)\nv = XOR(u, c)\ny = OR(v, a)\n",
        "f",
    )
    .unwrap();
    let u = c.find("u").unwrap();
    let v = c.find("v").unwrap();
    let h = harden_tmr(&c, &[u, v]).unwrap();
    // Simulation check over all 8 input patterns.
    let sim_c = BitSim::new(&c).unwrap();
    let sim_h = BitSim::new(&h).unwrap();
    let y_c = c.find("y").unwrap();
    let y_h = h.find("y").unwrap();
    for code in 0u32..8 {
        let bits: Vec<bool> = (0..3).map(|i| code >> i & 1 != 0).collect();
        assert_eq!(
            sim_c.run_scalar(&bits)[y_c.index()],
            sim_h.run_scalar(&bits)[y_h.index()],
            "inputs {bits:?}"
        );
    }
    // And the formal check agrees.
    assert_eq!(
        check_equivalence(&c, &h, 1 << 18).unwrap(),
        Equivalence::Equivalent
    );
}

#[test]
fn replicas_are_fully_masked() {
    let c = c17();
    let g16 = c.find("G16").unwrap();
    let h = harden_tmr(&c, &[g16]).unwrap();
    let sim = BitSim::new(&h).unwrap();
    let mc = MonteCarlo::new(5_000).with_seed(2);
    let oracle = BddExactEpp::new();
    for replica in ["G16__r0", "G16__r1", "G16__r2"] {
        let site = h.find(replica).unwrap();
        assert_eq!(mc.estimate_site(&sim, site).p_sensitized, 0.0, "{replica}");
        let exact = oracle
            .site(&h, &InputProbs::default(), site)
            .unwrap()
            .p_sensitized;
        assert_eq!(exact, 0.0, "{replica} (exact)");
    }
}

#[test]
fn analytical_epp_overestimates_voter_reconvergence() {
    // The voter is pure reconvergence: the paper's independence-assuming
    // rules see the replicas as vulnerable when they are not. This is
    // the documented blind spot the exact oracle covers.
    let c = c17();
    let g16 = c.find("G16").unwrap();
    let h = harden_tmr(&c, &[g16]).unwrap();
    let outcome = CircuitSerAnalysis::new().run(&h).unwrap();
    let r0 = h.find("G16__r0").unwrap();
    let analytic = outcome.site(r0).p_sensitized();
    assert!(
        analytic > 0.1,
        "expected the analytical method to overestimate (got {analytic})"
    );
}

#[test]
fn plan_then_transform_reduces_exact_ser() {
    // Greedy plan on the original, TMR the chosen gates, then compare
    // exact total SER (sum of per-node P_sens over the *gates* of each
    // circuit, unit R_SEU) before and after.
    let c = c17();
    let outcome = CircuitSerAnalysis::new().run(&c).unwrap();
    let plan = HardeningPlan::greedy(&c, outcome.report(), HardeningCost::Unit, 2.0);
    let chosen: Vec<_> = plan
        .choices()
        .iter()
        .map(|ch| ch.node)
        .filter(|&n| c.node(n).kind().is_logic())
        .collect();
    assert!(!chosen.is_empty());
    let h = harden_tmr(&c, &chosen).unwrap();

    let oracle = BddExactEpp::new();
    let probs = InputProbs::default();
    let exact_total = |circ: &ser_suite::netlist::Circuit| -> f64 {
        circ.iter()
            .filter(|(_, n)| n.kind().is_logic())
            .map(|(id, _)| oracle.site(circ, &probs, id).unwrap().p_sensitized)
            .sum()
    };
    let before = exact_total(&c);
    let after = exact_total(&h);
    // The hardened circuit has more gates (replicas + voters) but the
    // replicas contribute 0, and each protected gate's former
    // contribution (1.0 each here: G16 drives both outputs densely) is
    // replaced by the voter's — which is what the original gate
    // contributed. Net change: protected upsets moved from "gate" to
    // "voter", replicas silent. The voter gates (v01, v02, v12) add
    // small new contributions; the win is per-protected-upset-rate,
    // visible when R_SEU weights replicas at 1/3 each. Assert the
    // structural facts rather than a naive total:
    assert!(after.is_finite() && before.is_finite());
    for &n in &chosen {
        for replica in ser_suite::epp::tmr_replica_names(&c, n) {
            let site = h.find(&replica).unwrap();
            assert_eq!(
                oracle.site(&h, &probs, site).unwrap().p_sensitized,
                0.0,
                "replica {replica} must be masked"
            );
        }
    }
}
