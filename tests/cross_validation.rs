//! Cross-engine validation: the analytical EPP method, the Monte-Carlo
//! baseline and the exact oracle must tell one consistent story across
//! circuit families.

use ser_suite::epp::{CircuitSerAnalysis, EppAnalysis, ExactEpp};
use ser_suite::gen::{
    c17, equality_comparator, iscas89_like, parity_tree, ripple_carry_adder, s27, xor_from_nands,
    RandomDag,
};
use ser_suite::netlist::Circuit;
use ser_suite::sim::{BitSim, MonteCarlo};
use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};

/// Analytical vs exact on every node; returns (mean, max) abs error.
fn analytic_vs_exact(circuit: &Circuit) -> (f64, f64) {
    let probs = InputProbs::default();
    let sp = IndependentSp::new().compute(circuit, &probs).unwrap();
    let analysis = EppAnalysis::new(circuit, sp).unwrap();
    let oracle = ExactEpp::new();
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0usize;
    for id in circuit.node_ids() {
        let a = analysis.site(id).p_sensitized();
        let e = oracle.site(circuit, &probs, id).unwrap().p_sensitized;
        let d = (a - e).abs();
        sum += d;
        max = max.max(d);
        n += 1;
    }
    (sum / n as f64, max)
}

#[test]
fn trees_are_exact() {
    // Fanout-free structures: the analytical method must be exact.
    let (mean, max) = analytic_vs_exact(&parity_tree(12));
    assert!(max < 1e-9, "parity tree: max error {max}");
    assert_eq!(mean, mean.min(1e-9));
}

#[test]
fn comparator_is_near_exact() {
    // The comparator's only sharing is at the wide final AND.
    let (_, max) = analytic_vs_exact(&equality_comparator(6));
    assert!(max < 1e-9, "comparator: max error {max}");
}

#[test]
fn c17_close_to_exact() {
    let (mean, max) = analytic_vs_exact(&c17());
    assert!(mean < 0.05, "c17 mean error {mean}");
    assert!(max < 0.25, "c17 max error {max}");
}

#[test]
fn xor_from_nands_reconvergence_error_bounded() {
    let (mean, max) = analytic_vs_exact(&xor_from_nands());
    // The canonical worst case for the paper's method: XOR built from
    // NANDs is *all* reconvergence. Site `a` truly always flips y
    // (P_sens = 1.0) but the independence-assuming rules report 0.375.
    // This is a real, documented limitation (the paper's own %Dif grows
    // to 11-12% on its reconvergence-heavy circuits); the assertion
    // pins the measured band so regressions are caught.
    assert!(mean > 0.10, "error suspiciously small: {mean}");
    assert!(mean < 0.30, "xor-of-nands mean error {mean}");
    assert!(max <= 0.625 + 1e-12, "worst node error {max}");
}

#[test]
fn adder_families_stay_accurate() {
    for n in [2usize, 4, 6] {
        let c = ripple_carry_adder(n);
        let (mean, _) = analytic_vs_exact(&c);
        assert!(mean < 0.08, "rca{n} mean error {mean}");
    }
}

#[test]
fn random_dags_mean_error_small() {
    for seed in 0..4 {
        let c = RandomDag::new(10, 40).with_reconvergence(0.5).build(seed);
        let (mean, _) = analytic_vs_exact(&c);
        // Moderate-reconvergence random DAGs: worst observed mean over
        // these seeds is ~0.13 (documented approximation error).
        assert!(mean < 0.2, "dag seed {seed}: mean error {mean}");
    }
}

#[test]
fn monte_carlo_agrees_with_exact() {
    // The baseline itself must converge to the oracle.
    let c = c17();
    let probs = InputProbs::default();
    let sim = BitSim::new(&c).unwrap();
    let mc = MonteCarlo::new(100_000).with_seed(5);
    let oracle = ExactEpp::new();
    for id in c.node_ids() {
        let m = mc.estimate_site(&sim, id).p_sensitized;
        let e = oracle.site(&c, &probs, id).unwrap().p_sensitized;
        assert!((m - e).abs() < 0.01, "node {id}: mc {m} vs exact {e}");
    }
}

#[test]
fn s27_analytical_vs_monte_carlo() {
    // The real ISCAS'89 s27: compare the two methods the paper compares.
    let c = s27();
    let outcome = CircuitSerAnalysis::new().run(&c).unwrap();
    let sim = BitSim::new(&c).unwrap();
    let mc = MonteCarlo::new(50_000).with_seed(17);
    let mut worst = 0.0f64;
    for id in c.node_ids() {
        let a = outcome.site(id).p_sensitized();
        let m = mc.estimate_site(&sim, id).p_sensitized;
        worst = worst.max((a - m).abs());
    }
    // s27's cross-coupled NOR state logic is reconvergence-dense: the
    // worst node disagrees by ~0.38 (measured; a genuine limitation of
    // the independence-assuming rules, see EXPERIMENTS.md). The bound
    // pins the band.
    assert!(worst < 0.5, "worst disagreement {worst}");
}

#[test]
fn synthetic_benchmark_end_to_end() {
    // The full Table 2 pipeline on the smallest profile stand-in.
    let c = iscas89_like("s298").unwrap();
    let outcome = CircuitSerAnalysis::new().run(&c).unwrap();
    let sim = BitSim::new(&c).unwrap();
    let mc = MonteCarlo::new(5_000).with_seed(3);
    // Sample a few sites; both methods must broadly agree.
    let sites: Vec<_> = c.node_ids().step_by(17).take(10).collect();
    let mut sum_diff = 0.0;
    for &site in &sites {
        let a = outcome.site(site).p_sensitized();
        let m = mc.estimate_site(&sim, site).p_sensitized;
        sum_diff += (a - m).abs();
    }
    let mean_diff = sum_diff / sites.len() as f64;
    // A band, not a point estimate: the sampled mean moves with the
    // synthetic circuit's reconvergence density, which depends on the
    // PRNG stream behind `synthesize` (~0.27 with the vendored PRNG).
    assert!(mean_diff < 0.35, "mean disagreement {mean_diff}");
}

#[test]
fn merged_polarity_never_underestimates_arrival_on_xor_cancellation() {
    use ser_suite::epp::PolarityMode;
    // On the canonical cancellation circuit the merged mode reports
    // arrival where the tracked mode correctly reports none.
    let c = ser_suite::netlist::parse_bench(
        "INPUT(a)\nOUTPUT(y)\nu = NOT(a)\nv = NOT(a)\ny = XOR(u, v)\n",
        "cancel",
    )
    .unwrap();
    let sp = IndependentSp::new()
        .compute(&c, &InputProbs::default())
        .unwrap();
    let analysis = EppAnalysis::new(&c, sp).unwrap();
    let a = c.find("a").unwrap();
    let tracked = analysis.site_with(a, PolarityMode::Tracked).p_sensitized();
    let merged = analysis.site_with(a, PolarityMode::Merged).p_sensitized();
    assert_eq!(tracked, 0.0);
    assert_eq!(merged, 0.0, "XOR cancellation is polarity-independent");
    // Where merged DOES differ: opposite-parity reconvergence at AND.
    let c = ser_suite::netlist::parse_bench(
        "INPUT(a)\nOUTPUT(y)\nu = NOT(a)\nv = BUF(a)\ny = AND(u, v)\n",
        "opp",
    )
    .unwrap();
    let sp = IndependentSp::new()
        .compute(&c, &InputProbs::default())
        .unwrap();
    let analysis = EppAnalysis::new(&c, sp).unwrap();
    let a = c.find("a").unwrap();
    let tracked = analysis.site_with(a, PolarityMode::Tracked).p_sensitized();
    let merged = analysis.site_with(a, PolarityMode::Merged).p_sensitized();
    assert!(merged > tracked, "merged {merged} vs tracked {tracked}");
}
