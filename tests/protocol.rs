//! Wire-protocol tests: envelope parsing (including the nested
//! containers the v2 dialect adds), structured error codes, the v1
//! compatibility shim against recorded PR-3 job lines, streaming
//! frames through an in-memory connection, and proptests over
//! malformed / truncated / version-mismatched lines.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use ser_suite::epp::{AnalysisSession, PolarityMode};
use ser_suite::service::json::{self, JsonValue};
use ser_suite::service::{
    parse_job_line, parse_wire_line, Connection, EngineConfig, ErrorCode, FrameSink, JobOp,
    LineStream, ParsedLine, ProtocolEngine, SerService, SerServiceConfig, WireOp, PROTOCOL_VERSION,
};
use ser_suite::sim::SequentialMonteCarlo;
use ser_suite::sp::InputProbs;

// ---------------------------------------------------------------------
// Harness: an in-memory connection over the real engine
// ---------------------------------------------------------------------

struct ScriptLines(std::vec::IntoIter<String>);

impl LineStream for ScriptLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        Ok(self.0.next())
    }
}

#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs `lines` through one engine connection; returns the reply lines.
fn run_lines(engine: &ProtocolEngine, lines: Vec<String>) -> Vec<String> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let conn = Connection {
        lines: Box::new(ScriptLines(lines.into_iter())),
        sink: FrameSink::new(Capture(Arc::clone(&buffer))),
        peer: "test".to_owned(),
    };
    engine.serve_connection(conn).expect("in-memory I/O");
    let bytes = buffer.lock().unwrap().clone();
    String::from_utf8(bytes)
        .expect("utf-8 frames")
        .lines()
        .map(str::to_owned)
        .collect()
}

fn engine() -> ProtocolEngine {
    engine_with(EngineConfig::default())
}

fn engine_with(config: EngineConfig) -> ProtocolEngine {
    ProtocolEngine::new(
        Arc::new(SerService::new(SerServiceConfig {
            max_sessions: 4,
            threads: 2,
            sweep_batch_sites: 4, // many parts per sweep
            max_sweep_responses: 8,
            plan_cache_dir: None,
            plan_cache_max_bytes: None,
            ..SerServiceConfig::default()
        })),
        config,
    )
}

/// Writes the canonical 5-node test netlist; returns its path.
fn write_netlist(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ser_protocol_{}_{name}.bench", std::process::id()));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
    )
    .unwrap();
    path
}

fn frame_kind(line: &str) -> Option<String> {
    let v = json::parse_value(line).unwrap_or_else(|e| panic!("bad frame `{line}`: {e}"));
    v.get("frame")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
}

fn error_code(line: &str) -> Option<String> {
    let v = json::parse_value(line).ok()?;
    v.get("error")?
        .get("code")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
}

// ---------------------------------------------------------------------
// Envelope parsing
// ---------------------------------------------------------------------

#[test]
fn v2_envelope_parses_each_op_with_nested_containers() {
    let ParsedLine::V2(req) = parse_wire_line(
        r#"{"v": 2, "id": "r1", "op": "sweep", "netlist": "x.bench", "sites": ["a", "y"], "polarity": "merged", "top": 3, "chunk_sites": 2}"#,
    )
    .unwrap() else {
        panic!("v2 expected");
    };
    assert_eq!(req.id.as_deref(), Some("r1"));
    let WireOp::Sweep(sweep) = req.op else {
        panic!("sweep expected");
    };
    assert_eq!(
        sweep.sites.as_deref(),
        Some(&["a".to_owned(), "y".to_owned()][..])
    );
    assert_eq!(sweep.polarity, PolarityMode::Merged);
    assert_eq!(sweep.top, Some(3));
    assert_eq!(sweep.chunk_sites, Some(2));

    let ParsedLine::V2(req) = parse_wire_line(
        r#"{"v": 2, "op": "multi_cycle", "netlist": "x.bench", "node": "y", "cycles": 4, "monte_carlo": {"runs": 1000, "target_error": 0.2, "seed": 9}}"#,
    )
    .unwrap() else {
        panic!("v2 expected");
    };
    let WireOp::MultiCycle(mcy) = req.op else {
        panic!("multi_cycle expected");
    };
    assert_eq!(mcy.cycles, 4);
    let leg = mcy.monte_carlo.unwrap();
    assert_eq!(
        (leg.runs, leg.target_error, leg.seed),
        (1000, Some(0.2), Some(9))
    );

    let ParsedLine::V2(req) = parse_wire_line(
        r#"{"v": 2, "op": "set_inputs", "netlist": "x.bench", "inputs": {"default": 0.3, "overrides": {"a": 0.9, "b": 0.25}}}"#,
    )
    .unwrap() else {
        panic!("v2 expected");
    };
    let WireOp::SetInputs(si) = req.op else {
        panic!("set_inputs expected");
    };
    assert_eq!(si.default_p, 0.3);
    assert_eq!(
        si.overrides,
        vec![("a".to_owned(), 0.9), ("b".to_owned(), 0.25)]
    );

    assert!(matches!(
        parse_wire_line(r#"{"v": 2, "op": "stats"}"#).unwrap(),
        ParsedLine::V2(r) if matches!(r.op, WireOp::Stats)
    ));
    assert!(matches!(
        parse_wire_line(r#"{"v": 2, "op": "hello", "token": "s"}"#).unwrap(),
        ParsedLine::V2(r) if matches!(r.op, WireOp::Hello { token: Some(_) })
    ));
}

#[test]
fn wire_ops_table_matches_the_parser() {
    // WIRE_OPS is the load-bearing anchor ser-lint's wire-doc-sync
    // rule extracts; this test pins it to the dispatcher. Every
    // listed op must be *known* to the parser (it may still reject a
    // field-free envelope as bad_request — that proves dispatch
    // happened), and an op off the list must be unknown_op.
    for op in ser_service::WIRE_OPS {
        let line = format!("{{\"v\": 2, \"op\": \"{op}\"}}");
        match parse_wire_line(&line) {
            Ok(_) => {}
            Err(e) => assert_ne!(
                e.code,
                ErrorCode::UnknownOp,
                "`{op}` is in WIRE_OPS but the parser does not know it"
            ),
        }
    }
    let err = parse_wire_line(r#"{"v": 2, "op": "not_an_op"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownOp);
}

#[test]
fn v2_rejects_unknown_ops_unread_fields_and_bad_probabilities() {
    let err = parse_wire_line(r#"{"v": 2, "op": "warp", "netlist": "x"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownOp);

    // Unread fields fail loudly, exactly like the v1 dialect.
    let err = parse_wire_line(r#"{"v": 2, "op": "stats", "netlist": "x.bench"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest, "{err}");
    assert!(err.message.contains("netlist"), "{err}");
    let err =
        parse_wire_line(r#"{"v": 2, "op": "site", "netlist": "x", "node": "y", "vectors": 5}"#)
            .unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest, "{err}");

    // Probabilities validated at parse time (no panic deep inside).
    let err = parse_wire_line(
        r#"{"v": 2, "op": "set_inputs", "netlist": "x", "inputs": {"default": 1.5}}"#,
    )
    .unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest, "{err}");

    // Nested config in the wrong shape.
    let err = parse_wire_line(
        r#"{"v": 2, "op": "multi_cycle", "netlist": "x", "node": "y", "cycles": 2, "monte_carlo": 7}"#,
    )
    .unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest, "{err}");
}

#[test]
fn version_gate_is_strict() {
    for (line, expect_shim_hint) in [
        (r#"{"v": 1, "op": "sweep", "netlist": "x"}"#, true),
        (r#"{"v": 3, "op": "sweep", "netlist": "x"}"#, false),
        (r#"{"v": 99, "op": "stats"}"#, false),
    ] {
        let err = parse_wire_line(line).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{line}");
        assert_eq!(err.message.contains("unversioned"), expect_shim_hint);
    }
    let err = parse_wire_line(r#"{"v": "two", "op": "stats"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    let err = parse_wire_line(r#"{"v": 2.5, "op": "stats"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
}

// ---------------------------------------------------------------------
// The v1 shim
// ---------------------------------------------------------------------

/// The exact job lines PR 3 documented and tested — recorded here so
/// the shim is measured against the dialect as it actually shipped.
const RECORDED_V1_LINES: &[&str] = &[
    r#"{"op": "sweep", "netlist": "s953.bench", "top": 5}"#,
    r#"{"op": "site", "netlist": "s953.bench", "node": "G125"}"#,
    r#"{"op": "monte_carlo", "netlist": "s953.bench", "node": "G125", "vectors": 20000, "target_error": 0.1}"#,
    r#"{"op": "multi_cycle", "netlist": "s953.bench", "node": "G125", "cycles": 4, "runs": 10000}"#,
    r#"{"op": "epp", "netlist": "a.bench", "node": "y"}"#,
    r#"{"op": "mc", "netlist": "a.bench", "node": "y", "seed": 7}"#,
];

#[test]
fn recorded_v1_job_lines_parse_through_the_shim() {
    for line in RECORDED_V1_LINES {
        let ParsedLine::V1(spec) = parse_wire_line(line).unwrap() else {
            panic!("v1 expected for `{line}`");
        };
        // The shim must agree with the original v1 parser, field for
        // field.
        assert_eq!(spec, parse_job_line(line).unwrap(), "`{line}`");
    }
    // Spot-check the op mapping.
    let ParsedLine::V1(spec) = parse_wire_line(RECORDED_V1_LINES[2]).unwrap() else {
        panic!("v1");
    };
    assert_eq!(spec.op, JobOp::MonteCarlo);
    assert_eq!(spec.vectors, Some(20000));
    assert_eq!(spec.target_error, Some(0.1));

    // v1 rejections keep their codes: unknown op, nested containers.
    let err = parse_wire_line(r#"{"op": "warp", "netlist": "x"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("unknown op"), "{err}");
    let err = parse_wire_line(r#"{"op": "sweep", "netlist": "x", "sites": ["a"]}"#).unwrap_err();
    assert!(err.message.contains("nested containers"), "{err}");
}

#[test]
fn v1_lines_are_served_in_the_v1_response_shape() {
    let netlist = write_netlist("v1shape");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            "# a comment line".to_owned(),
            String::new(),
            format!(r#"{{"op": "sweep", "netlist": "{path}", "top": 2}}"#),
            format!(r#"{{"op": "site", "netlist": "{path}", "node": "y"}}"#),
            format!(r#"{{"op": "site", "netlist": "{path}", "node": "zz"}}"#),
        ],
    );
    assert_eq!(replies.len(), 3, "{replies:?}");
    // v1 responses: no envelope, no frame key, the old field layout.
    let sweep = json::parse_value(&replies[0]).unwrap();
    assert!(sweep.get("v").is_none() && sweep.get("frame").is_none());
    assert_eq!(sweep.get("op").and_then(JsonValue::as_str), Some("sweep"));
    assert_eq!(sweep.get("warm"), Some(&JsonValue::Bool(false)));
    assert_eq!(sweep.get("nodes").and_then(JsonValue::as_count), Some(5));
    let JsonValue::Arr(top) = sweep.get("top").unwrap() else {
        panic!("ranking array");
    };
    assert_eq!(top.len(), 2, "top: 2 honoured");
    let site = json::parse_value(&replies[1]).unwrap();
    assert_eq!(
        site.get("warm"),
        Some(&JsonValue::Bool(true)),
        "session warm"
    );
    // v1 errors now carry the structured object (the one deliberate
    // change to the dialect).
    let err = json::parse_value(&replies[2]).unwrap();
    assert_eq!(err.get("line").and_then(JsonValue::as_count), Some(5));
    assert_eq!(
        err.get("error")
            .unwrap()
            .get("code")
            .and_then(JsonValue::as_str),
        Some("not_found")
    );
    let _ = std::fs::remove_file(&netlist);
}

// ---------------------------------------------------------------------
// v2 end to end through an in-memory connection
// ---------------------------------------------------------------------

#[test]
fn sweep_chunks_are_bit_identical_to_a_direct_session() {
    let netlist = write_netlist("chunks");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![format!(
            r#"{{"v": 2, "id": "s1", "op": "sweep", "netlist": "{path}", "chunk_sites": 2, "top": 0}}"#
        )],
    );
    // 5 nodes in chunks of 2: three chunk frames, then the result.
    assert_eq!(replies.len(), 4, "{replies:?}");
    let mut values: Vec<(String, f64)> = Vec::new();
    for line in &replies[..3] {
        assert_eq!(frame_kind(line).as_deref(), Some("chunk"));
        let v = json::parse_value(line).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("s1"));
        let JsonValue::Arr(sites) = v.get("sites").unwrap() else {
            panic!("sites array");
        };
        for site in sites {
            values.push((
                site.get("node")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_owned(),
                site.get("p_sensitized")
                    .and_then(JsonValue::as_f64)
                    .unwrap(),
            ));
        }
    }
    let result = json::parse_value(&replies[3]).unwrap();
    assert_eq!(frame_kind(&replies[3]).as_deref(), Some("result"));
    assert_eq!(result.get("chunks").and_then(JsonValue::as_count), Some(3));

    // Every chunked value round-trips bit-identically to the direct
    // owned-session sweep.
    let circuit =
        ser_suite::netlist::parse_bench(&std::fs::read_to_string(&netlist).unwrap(), "chunks")
            .unwrap();
    let session = AnalysisSession::new(&circuit).unwrap();
    let direct = session.sweep(1);
    assert_eq!(values.len(), circuit.len());
    for (pos, (name, p)) in values.iter().enumerate() {
        let site = direct.get(pos);
        assert_eq!(name, circuit.node(site.site()).name());
        assert_eq!(
            p.to_bits(),
            site.p_sensitized().to_bits(),
            "site {name}: wire value not bit-identical"
        );
    }
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn sequential_monte_carlo_streams_progress_frames() {
    let netlist = write_netlist("mcstream");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![format!(
            r#"{{"v": 2, "id": "mc1", "op": "monte_carlo", "netlist": "{path}", "node": "a", "target_error": 0.04, "seed": 11}}"#
        )],
    );
    let (progress, rest): (Vec<_>, Vec<_>) = replies
        .iter()
        .partition(|l| frame_kind(l).as_deref() == Some("progress"));
    assert!(
        progress.len() >= 2,
        "sequential MC must stream ≥ 2 progress frames, got {}: {replies:?}",
        progress.len()
    );
    assert_eq!(rest.len(), 1, "exactly one result frame: {rest:?}");
    assert!(
        replies.last().map(|l| frame_kind(l)).unwrap().as_deref() == Some("result"),
        "result is the final frame"
    );
    // Progress counters are monotonic and id-tagged.
    let mut last_vectors = 0;
    for line in &progress {
        let v = json::parse_value(line).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("mc1"));
        let vectors = v.get("vectors").and_then(JsonValue::as_count).unwrap();
        assert!(vectors > last_vectors);
        last_vectors = vectors;
        let interim = v.get("interim_p").and_then(JsonValue::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&interim));
    }
    // The final estimate is bit-identical to the rule run directly.
    let circuit =
        ser_suite::netlist::parse_bench(&std::fs::read_to_string(&netlist).unwrap(), "mcstream")
            .unwrap();
    let session = AnalysisSession::new(&circuit).unwrap();
    let direct = SequentialMonteCarlo::new(0.04)
        .with_seed(11)
        .with_max_vectors(10_000)
        .estimate_site(session.bit_sim(), circuit.find("a").unwrap());
    let result = json::parse_value(rest[0]).unwrap();
    assert_eq!(
        result.get("vectors").and_then(JsonValue::as_count),
        Some(direct.vectors)
    );
    assert_eq!(
        result
            .get("p_sensitized")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        direct.p_sensitized.to_bits()
    );
    assert!(last_vectors < direct.vectors, "progress precedes the end");
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn set_inputs_and_stats_travel_the_wire() {
    let netlist = write_netlist("setinputs");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            format!(r#"{{"v": 2, "id": "w0", "op": "sweep", "netlist": "{path}", "top": 0}}"#),
            format!(
                r#"{{"v": 2, "id": "w1", "op": "set_inputs", "netlist": "{path}", "inputs": {{"default": 0.5, "overrides": {{"a": 0.9, "c": 0.1}}}}}}"#
            ),
            format!(r#"{{"v": 2, "id": "w2", "op": "sweep", "netlist": "{path}", "top": 0}}"#),
            r#"{"v": 2, "id": "w3", "op": "stats"}"#.to_owned(),
        ],
    );
    assert_eq!(replies.len(), 4, "{replies:?}");
    let before = json::parse_value(&replies[0]).unwrap();
    let set = json::parse_value(&replies[1]).unwrap();
    let after = json::parse_value(&replies[2]).unwrap();
    let stats = json::parse_value(&replies[3]).unwrap();

    assert_eq!(
        set.get("op").and_then(JsonValue::as_str),
        Some("set_inputs")
    );
    assert_eq!(set.get("revision").and_then(JsonValue::as_count), Some(2));
    assert_eq!(
        after.get("warm"),
        Some(&JsonValue::Bool(true)),
        "set_inputs keeps the session warm"
    );

    // The re-derived sweep total equals the direct owned-session run
    // under the same distribution, bit for bit.
    let circuit =
        ser_suite::netlist::parse_bench(&std::fs::read_to_string(&netlist).unwrap(), "setinputs")
            .unwrap();
    let a = circuit.find("a").unwrap();
    let c = circuit.find("c").unwrap();
    let direct =
        AnalysisSession::with_inputs(&circuit, InputProbs::uniform(0.5).with(a, 0.9).with(c, 0.1))
            .unwrap()
            .sweep(1);
    let direct_total: f64 = direct.p_sensitized().iter().sum();
    let wire_total = after
        .get("total_p_sensitized")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(wire_total.to_bits(), direct_total.to_bits());
    assert_ne!(
        wire_total.to_bits(),
        before
            .get("total_p_sensitized")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        "the distribution change is visible on the wire"
    );

    // Stats reflect the traffic: two sweeps + the set_inputs lookup.
    assert_eq!(stats.get("op").and_then(JsonValue::as_str), Some("stats"));
    assert_eq!(
        stats.get("sessions_cached").and_then(JsonValue::as_count),
        Some(1)
    );
    assert!(
        stats
            .get("session_hits")
            .and_then(JsonValue::as_count)
            .unwrap()
            >= 2
    );
    let _ = std::fs::remove_file(&netlist);
}

/// Writes a small sequential netlist (one DFF in the path); returns
/// its path.
fn write_dff_netlist(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ser_protocol_{}_{name}.bench", std::process::id()));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = AND(a, b)\nq = DFF(u)\ny = OR(q, b)\n",
    )
    .unwrap();
    path
}

#[test]
fn whatif_and_revert_round_trip_bitwise() {
    let netlist = write_netlist("whatif");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            format!(r#"{{"v": 2, "id": "q0", "op": "sweep", "netlist": "{path}", "top": 0}}"#),
            format!(
                r#"{{"v": 2, "id": "q1", "op": "whatif", "netlist": "{path}", "edit": "tmr", "node": "u", "chunk_sites": 4}}"#
            ),
            format!(r#"{{"v": 2, "id": "q2", "op": "whatif_revert", "netlist": "{path}"}}"#),
            format!(r#"{{"v": 2, "id": "q3", "op": "sweep", "netlist": "{path}", "top": 0}}"#),
        ],
    );

    let baseline = json::parse_value(&replies[0]).unwrap();
    let baseline_total = baseline
        .get("total_p_sensitized")
        .and_then(JsonValue::as_f64)
        .unwrap();

    // The whatif reply: chunk frames carrying the dirty-region deltas,
    // then the result frame.
    let whatif_frames: Vec<&String> = replies[1..]
        .iter()
        .take_while(|l| frame_kind(l).as_deref() == Some("chunk"))
        .collect();
    let result = json::parse_value(&replies[1 + whatif_frames.len()]).unwrap();
    assert_eq!(result.get("op").and_then(JsonValue::as_str), Some("whatif"));
    assert_eq!(result.get("edit").and_then(JsonValue::as_str), Some("tmr"));
    assert_eq!(result.get("depth").and_then(JsonValue::as_count), Some(1));

    let mut deltas = 0usize;
    let mut born = 0usize; // sites the edit introduced (old_p null)
    for (seq, line) in whatif_frames.iter().enumerate() {
        let v = json::parse_value(line).unwrap();
        assert_eq!(v.get("seq").and_then(JsonValue::as_count), Some(seq as u64));
        let JsonValue::Arr(items) = v.get("deltas").unwrap() else {
            panic!("deltas array");
        };
        for item in items {
            deltas += 1;
            if matches!(item.get("old_p"), Some(JsonValue::Null)) {
                born += 1;
            } else {
                item.get("old_p").and_then(JsonValue::as_f64).unwrap();
            }
            item.get("new_p").and_then(JsonValue::as_f64).unwrap();
        }
    }
    assert_eq!(
        born, 6,
        "TMR introduces two replicas and a 4-gate voter tree"
    );
    assert_eq!(
        result.get("dirty_sites").and_then(JsonValue::as_count),
        Some(deltas as u64),
        "every dirty site's delta is streamed"
    );
    assert_eq!(
        result.get("chunks").and_then(JsonValue::as_count),
        Some(whatif_frames.len() as u64)
    );
    assert_eq!(
        result
            .get("previous_ser")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        baseline_total.to_bits(),
        "the what-if base state is the warm sweep, bit for bit"
    );

    // The incremental total is bit-identical to a from-scratch session
    // on the edited circuit.
    let circuit =
        ser_suite::netlist::parse_bench(&std::fs::read_to_string(&netlist).unwrap(), "whatif")
            .unwrap();
    let u = circuit.find("u").unwrap();
    let hardened = ser_suite::netlist::harden_tmr(&circuit, &[u]).unwrap();
    let direct: f64 = AnalysisSession::new(&hardened)
        .unwrap()
        .sweep(1)
        .p_sensitized()
        .iter()
        .sum();
    let edited_total = result.get("total_ser").and_then(JsonValue::as_f64).unwrap();
    assert_eq!(
        result.get("total_sites").and_then(JsonValue::as_count),
        Some(11)
    );
    assert_eq!(edited_total.to_bits(), direct.to_bits());
    assert_ne!(edited_total.to_bits(), baseline_total.to_bits());

    // Revert pops back to the base payload bitwise, and a fresh sweep
    // of the (unchanged) netlist agrees.
    let revert = json::parse_value(&replies[1 + whatif_frames.len() + 1]).unwrap();
    assert_eq!(
        revert.get("op").and_then(JsonValue::as_str),
        Some("whatif_revert")
    );
    assert_eq!(revert.get("depth").and_then(JsonValue::as_count), Some(0));
    assert_eq!(
        revert
            .get("total_ser")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        baseline_total.to_bits(),
        "revert restores the base total bitwise"
    );
    let after = json::parse_value(replies.last().unwrap()).unwrap();
    assert_eq!(
        after
            .get("total_p_sensitized")
            .and_then(JsonValue::as_f64)
            .unwrap()
            .to_bits(),
        baseline_total.to_bits()
    );
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn caps_reject_oversized_requests_before_the_executor() {
    let netlist = write_netlist("caps");
    let path = netlist.to_str().unwrap();
    let engine = ProtocolEngine::new(
        Arc::new(SerService::new(SerServiceConfig {
            max_sessions: 4,
            threads: 2,
            max_vectors: 1_000,
            max_cycles: 8,
            max_runs: 500,
            ..SerServiceConfig::default()
        })),
        EngineConfig::default(),
    );
    let replies = run_lines(
        &engine,
        vec![
            format!(
                r#"{{"v": 2, "id": "c1", "op": "multi_cycle", "netlist": "{path}", "node": "y", "cycles": 9}}"#
            ),
            format!(
                r#"{{"v": 2, "id": "c2", "op": "monte_carlo", "netlist": "{path}", "node": "y", "vectors": 2000}}"#
            ),
            format!(
                r#"{{"v": 2, "id": "c3", "op": "multi_cycle", "netlist": "{path}", "node": "y", "cycles": 2, "monte_carlo": {{"runs": 600}}}}"#
            ),
            format!(
                r#"{{"v": 2, "id": "c4", "op": "monte_carlo", "netlist": "{path}", "node": "y", "vectors": 1000, "seed": 3}}"#
            ),
        ],
    );
    assert_eq!(replies.len(), 4, "{replies:?}");
    for (line, what) in replies[..3].iter().zip(["cycles", "vectors", "runs"]) {
        assert_eq!(frame_kind(line).as_deref(), Some("error"), "{line}");
        assert_eq!(error_code(line).as_deref(), Some("cap_exceeded"), "{line}");
        let message = json::parse_value(line)
            .unwrap()
            .get("error")
            .unwrap()
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_owned();
        assert!(
            message.contains(what) && message.contains("cap"),
            "message names the knob: {message}"
        );
    }
    assert_eq!(
        frame_kind(&replies[3]).as_deref(),
        Some("result"),
        "a request at the cap is served: {}",
        replies[3]
    );
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn multi_cycle_sequential_mc_streams_progress_frames() {
    let netlist = write_dff_netlist("mcycle_stream");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![format!(
            r#"{{"v": 2, "id": "p1", "op": "multi_cycle", "netlist": "{path}", "node": "u", "cycles": 3, "monte_carlo": {{"runs": 100000, "target_error": 0.05, "seed": 7}}}}"#
        )],
    );
    let (progress, rest): (Vec<_>, Vec<_>) = replies
        .iter()
        .partition(|l| frame_kind(l).as_deref() == Some("progress"));
    assert!(
        !progress.is_empty(),
        "sequential multi-cycle MC must stream progress frames: {replies:?}"
    );
    assert_eq!(rest.len(), 1, "exactly one result frame: {rest:?}");
    let mut last = 0;
    for line in &progress {
        let v = json::parse_value(line).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("p1"));
        assert_eq!(
            v.get("op").and_then(JsonValue::as_str),
            Some("monte_carlo"),
            "multi-cycle progress reuses the MC progress shape"
        );
        let runs = v.get("vectors").and_then(JsonValue::as_count).unwrap();
        assert!(runs > last, "monotonic: {replies:?}");
        last = runs;
    }

    // The estimate is bit-identical to the sequential rule run
    // directly — the observer is pure telemetry.
    let circuit = ser_suite::netlist::parse_bench(
        &std::fs::read_to_string(&netlist).unwrap(),
        "mcycle_stream",
    )
    .unwrap();
    let direct = ser_suite::epp::multi_cycle_monte_carlo_sequential(
        circuit.clone(),
        circuit.find("u").unwrap(),
        3,
        0.05,
        100_000,
        7,
    )
    .unwrap();
    let result = json::parse_value(rest[0]).unwrap();
    assert_eq!(
        result.get("mc_runs").and_then(JsonValue::as_count),
        Some(direct.runs)
    );
    let JsonValue::Arr(wire_cumulative) = result.get("mc_cumulative").unwrap() else {
        panic!("mc_cumulative array");
    };
    assert_eq!(wire_cumulative.len(), direct.cumulative.len());
    for (wire, direct) in wire_cumulative.iter().zip(&direct.cumulative) {
        assert_eq!(
            wire.as_f64().unwrap().to_bits(),
            direct.to_bits(),
            "wire multi-cycle MC value not bit-identical"
        );
    }
    assert!(last < direct.runs, "progress precedes the end");
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn auth_and_quota_gates() {
    let netlist = write_netlist("gates");
    let path = netlist.to_str().unwrap();

    // Auth: a non-hello first op is rejected and the connection closes.
    let engine = engine_with(EngineConfig {
        auth_token: Some("sesame".to_owned()),
        ..EngineConfig::default()
    });
    let replies = run_lines(
        &engine,
        vec![
            r#"{"v": 2, "op": "stats"}"#.to_owned(),
            r#"{"v": 2, "op": "stats"}"#.to_owned(), // never reached
        ],
    );
    assert_eq!(replies.len(), 1, "{replies:?}");
    assert_eq!(error_code(&replies[0]).as_deref(), Some("unauthorized"));

    // Wrong token: same.
    let replies = run_lines(
        &engine,
        vec![r#"{"v": 2, "op": "hello", "token": "wrong"}"#.to_owned()],
    );
    assert_eq!(error_code(&replies[0]).as_deref(), Some("unauthorized"));

    // Garbage cannot sidestep the gate: an unparseable pre-auth line
    // closes the connection just like any other non-hello line (an
    // unauthenticated client must not elicit unlimited replies).
    let replies = run_lines(
        &engine,
        vec![
            "not even json".to_owned(),
            "more garbage".to_owned(), // never reached
        ],
    );
    assert_eq!(replies.len(), 1, "{replies:?}");
    assert_eq!(error_code(&replies[0]).as_deref(), Some("unauthorized"));

    // Right token: handshake result, then service.
    let replies = run_lines(
        &engine,
        vec![
            r#"{"v": 2, "id": "h", "op": "hello", "token": "sesame"}"#.to_owned(),
            r#"{"v": 2, "op": "stats"}"#.to_owned(),
        ],
    );
    assert_eq!(replies.len(), 2, "{replies:?}");
    let hello = json::parse_value(&replies[0]).unwrap();
    assert_eq!(hello.get("op").and_then(JsonValue::as_str), Some("hello"));
    assert_eq!(
        hello.get("protocol").and_then(JsonValue::as_count),
        Some(PROTOCOL_VERSION)
    );
    assert_eq!(frame_kind(&replies[1]).as_deref(), Some("result"));

    // Quota: the third op (hello doesn't count) is refused, connection
    // closes.
    let engine = engine_with(EngineConfig {
        quota: Some(2),
        ..EngineConfig::default()
    });
    let replies = run_lines(
        &engine,
        vec![
            r#"{"v": 2, "op": "hello"}"#.to_owned(),
            format!(r#"{{"v": 2, "op": "site", "netlist": "{path}", "node": "y"}}"#),
            r#"{"v": 2, "op": "stats"}"#.to_owned(),
            r#"{"v": 2, "id": "q", "op": "stats"}"#.to_owned(),
            r#"{"v": 2, "op": "stats"}"#.to_owned(), // never reached
        ],
    );
    assert_eq!(replies.len(), 4, "{replies:?}");
    assert_eq!(error_code(&replies[3]).as_deref(), Some("quota_exceeded"));
    let refused = json::parse_value(&replies[3]).unwrap();
    assert_eq!(refused.get("id").and_then(JsonValue::as_str), Some("q"));

    // Unparseable lines count against the quota too — garbage is not a
    // loophole for unlimited replies.
    let engine = engine_with(EngineConfig {
        quota: Some(2),
        ..EngineConfig::default()
    });
    let replies = run_lines(
        &engine,
        vec![
            "garbage one {".to_owned(),
            "garbage two {".to_owned(),
            "garbage three {".to_owned(), // over quota: refused + close
            "garbage four {".to_owned(),  // never reached
        ],
    );
    assert_eq!(replies.len(), 3, "{replies:?}");
    assert_eq!(error_code(&replies[0]).as_deref(), Some("parse"));
    assert_eq!(error_code(&replies[1]).as_deref(), Some("parse"));
    assert_eq!(error_code(&replies[2]).as_deref(), Some("quota_exceeded"));

    // And so do repeated hellos: only the first handshake is free.
    let engine = engine_with(EngineConfig {
        quota: Some(2),
        ..EngineConfig::default()
    });
    let hello = r#"{"v": 2, "op": "hello"}"#.to_owned();
    let replies = run_lines(
        &engine,
        vec![
            hello.clone(), // free handshake
            hello.clone(), // counted: 1
            hello.clone(), // counted: 2
            hello.clone(), // over quota: refused + close
            hello,         // never reached
        ],
    );
    assert_eq!(replies.len(), 4, "{replies:?}");
    for line in &replies[..3] {
        assert_eq!(frame_kind(line).as_deref(), Some("result"), "{line}");
    }
    assert_eq!(error_code(&replies[3]).as_deref(), Some("quota_exceeded"));
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn structured_errors_come_back_as_code_message_objects() {
    let netlist = write_netlist("errors");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            "not json at all".to_owned(),
            r#"{"v": 7, "op": "stats"}"#.to_owned(),
            format!(r#"{{"v": 2, "op": "site", "netlist": "{path}", "node": "nope"}}"#),
            r#"{"v": 2, "op": "site", "netlist": "/nonexistent/x.bench", "node": "y"}"#.to_owned(),
            format!(
                r#"{{"v": 2, "op": "monte_carlo", "netlist": "{path}", "node": "y", "target_error": 1.5}}"#
            ),
        ],
    );
    let codes: Vec<_> = replies.iter().map(|l| error_code(l).unwrap()).collect();
    assert_eq!(
        codes,
        [
            "parse",
            "unsupported_version",
            "not_found",
            "not_found",
            "bad_request"
        ],
        "{replies:?}"
    );
    for line in &replies {
        let v = json::parse_value(line).unwrap();
        assert_eq!(frame_kind(line).as_deref(), Some("error"));
        assert!(
            v.get("error")
                .unwrap()
                .get("message")
                .and_then(JsonValue::as_str)
                .is_some(),
            "errors carry a message: {line}"
        );
    }
    let _ = std::fs::remove_file(&netlist);
}

// ---------------------------------------------------------------------
// Proptests: malformed, truncated, version-mismatched lines
// ---------------------------------------------------------------------

/// Canonical well-formed lines for the truncation property.
const CANONICAL_LINES: &[&str] = &[
    r#"{"v": 2, "id": "r1", "op": "sweep", "netlist": "x.bench", "sites": ["a", "y"], "chunk_sites": 2}"#,
    r#"{"v": 2, "op": "set_inputs", "netlist": "x.bench", "inputs": {"default": 0.5, "overrides": {"a": 0.9}}}"#,
    r#"{"v": 2, "op": "multi_cycle", "netlist": "x.bench", "node": "y", "cycles": 4, "monte_carlo": {"runs": 1000}}"#,
    r#"{"op": "monte_carlo", "netlist": "s953.bench", "node": "G125", "vectors": 20000}"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser; they either parse (as
    /// some valid line) or produce a structured error.
    #[test]
    fn garbage_lines_never_panic(bytes in proptest::collection::vec(0u8..128, 0usize..80)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match parse_wire_line(&line) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.message.is_empty()),
        }
    }

    /// Every proper prefix of a canonical line is a structured parse
    /// error — a truncated frame can never be mistaken for a request.
    #[test]
    fn truncated_frames_are_parse_errors((which, frac) in (0usize..4, 0.0f64..1.0)) {
        let line = CANONICAL_LINES[which];
        let cut = 1 + ((line.len() - 1) as f64 * frac) as usize;
        prop_assert!(cut < line.len());
        let truncated = &line[..cut];
        let err = parse_wire_line(truncated).expect_err("truncation must not parse");
        prop_assert_eq!(err.code, ErrorCode::Parse);
    }

    /// Any version other than 2 is refused with `unsupported_version`
    /// (never served, never panics).
    #[test]
    fn version_mismatches_are_refused(v in 0u64..1000) {
        let line = format!(r#"{{"v": {v}, "op": "stats"}}"#);
        match parse_wire_line(&line) {
            Ok(parsed) => {
                prop_assert_eq!(v, PROTOCOL_VERSION);
                prop_assert!(matches!(parsed, ParsedLine::V2(_)));
            }
            Err(e) => {
                prop_assert_ne!(v, PROTOCOL_VERSION);
                prop_assert_eq!(e.code, ErrorCode::UnsupportedVersion);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cancellation, deadlines, batch
// ---------------------------------------------------------------------

#[test]
fn cancel_batch_and_deadline_envelopes_parse() {
    // Every op accepts a deadline.
    let ParsedLine::V2(req) = parse_wire_line(
        r#"{"v": 2, "id": "s", "op": "site", "netlist": "x.bench", "node": "y", "deadline_ms": 250}"#,
    )
    .unwrap() else {
        panic!("v2 expected");
    };
    assert_eq!(req.deadline_ms, Some(250));

    // The cancel op names its target.
    let ParsedLine::V2(req) =
        parse_wire_line(r#"{"v": 2, "id": "c1", "op": "cancel", "target": "r42"}"#).unwrap()
    else {
        panic!("v2 expected");
    };
    let WireOp::Cancel(op) = req.op else {
        panic!("cancel expected");
    };
    assert_eq!(op.target, "r42");
    let err = parse_wire_line(r#"{"v": 2, "op": "cancel"}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest, "{err}");
    assert!(err.message.contains("target"), "{err}");

    // Batch: nested jobs parse recursively, with their own ids and
    // deadlines.
    let ParsedLine::V2(req) = parse_wire_line(
        r#"{"v": 2, "id": "b", "op": "batch", "deadline_ms": 9000, "jobs": [{"id": "j1", "op": "sweep", "netlist": "x.bench"}, {"id": "j2", "op": "site", "netlist": "x.bench", "node": "y", "deadline_ms": 100}]}"#,
    )
    .unwrap() else {
        panic!("v2 expected");
    };
    assert_eq!(req.deadline_ms, Some(9000));
    let WireOp::Batch(op) = req.op else {
        panic!("batch expected");
    };
    assert_eq!(op.jobs.len(), 2);
    assert_eq!(op.jobs[0].id.as_deref(), Some("j1"));
    assert_eq!(op.jobs[1].deadline_ms, Some(100));

    // Batch rejections: empty, non-compute jobs, nested batches, and
    // malformed jobs are named by index.
    for (line, needle) in [
        (r#"{"v": 2, "op": "batch", "jobs": []}"#.to_owned(), "jobs"),
        (
            r#"{"v": 2, "op": "batch", "jobs": [{"op": "stats"}]}"#.to_owned(),
            "jobs[0]",
        ),
        (
            r#"{"v": 2, "op": "batch", "jobs": [{"op": "site", "netlist": "x", "node": "y"}, {"op": "batch", "jobs": []}]}"#.to_owned(),
            "jobs[1]",
        ),
        (
            r#"{"v": 2, "op": "batch", "jobs": [{"op": "site", "netlist": "x"}]}"#.to_owned(),
            "jobs[0]",
        ),
    ] {
        let err = parse_wire_line(&line).unwrap_err();
        assert!(err.message.contains(needle), "{line} -> {err}");
    }
}

#[test]
fn expired_deadline_is_refused_before_any_work() {
    let netlist = write_netlist("deadline");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            format!(
                r#"{{"v": 2, "id": "d1", "op": "sweep", "netlist": "{path}", "deadline_ms": 0}}"#
            ),
            // The same request unhurried succeeds on the same connection:
            // an expired deadline poisons nothing.
            format!(r#"{{"v": 2, "id": "d2", "op": "sweep", "netlist": "{path}", "top": 0}}"#),
        ],
    );
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert_eq!(frame_kind(&replies[0]).as_deref(), Some("error"));
    assert_eq!(
        error_code(&replies[0]).as_deref(),
        Some("deadline_exceeded")
    );
    let err = json::parse_value(&replies[0]).unwrap();
    assert_eq!(err.get("id").and_then(JsonValue::as_str), Some("d1"));
    assert_eq!(frame_kind(&replies[1]).as_deref(), Some("result"));

    // No permit held, no cancel-registry entry leaked.
    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn cancel_of_an_unknown_id_reports_found_false() {
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![r#"{"v": 2, "id": "c", "op": "cancel", "target": "nobody"}"#.to_owned()],
    );
    assert_eq!(replies.len(), 1, "{replies:?}");
    let v = json::parse_value(&replies[0]).unwrap();
    assert_eq!(frame_kind(&replies[0]).as_deref(), Some("result"));
    assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("cancel"));
    assert_eq!(v.get("target").and_then(JsonValue::as_str), Some("nobody"));
    assert_eq!(v.get("found"), Some(&JsonValue::Bool(false)));
    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);
}

#[test]
fn batch_echoes_each_job_id_and_survives_a_cancelled_job() {
    let netlist = write_netlist("batch");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![
            format!(
                r#"{{"v": 2, "id": "b1", "op": "batch", "jobs": [{{"id": "j1", "op": "sweep", "netlist": "{path}", "top": 0, "chunk_sites": 2}}, {{"id": "j2", "op": "site", "netlist": "{path}", "node": "y"}}, {{"id": "j3", "op": "monte_carlo", "netlist": "{path}", "node": "a", "vectors": 256, "seed": 7}}, {{"id": "j4", "op": "site", "netlist": "{path}", "node": "y", "deadline_ms": 0}}]}}"#
            ),
            r#"{"v": 2, "id": "st", "op": "stats"}"#.to_owned(),
        ],
    );
    // j1 pages 5 nodes in chunks of 2 (3 chunk frames + result), j2 and
    // j3 are single results, j4 dies at its expired deadline, then the
    // batch summary and the stats line.
    assert_eq!(replies.len(), 9, "{replies:?}");
    let ids: Vec<Option<String>> = replies
        .iter()
        .map(|l| {
            json::parse_value(l)
                .unwrap()
                .get("id")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .collect();
    for (pos, want) in [
        (0, "j1"),
        (1, "j1"),
        (2, "j1"),
        (3, "j1"),
        (4, "j2"),
        (5, "j3"),
        (6, "j4"),
        (7, "b1"),
    ] {
        assert_eq!(ids[pos].as_deref(), Some(want), "{replies:?}");
    }
    for (pos, kind) in [(0, "chunk"), (3, "result"), (4, "result"), (5, "result")] {
        assert_eq!(frame_kind(&replies[pos]).as_deref(), Some(kind));
    }
    assert_eq!(
        error_code(&replies[6]).as_deref(),
        Some("deadline_exceeded")
    );
    let summary = json::parse_value(&replies[7]).unwrap();
    assert_eq!(summary.get("op").and_then(JsonValue::as_str), Some("batch"));
    assert_eq!(summary.get("jobs").and_then(JsonValue::as_count), Some(4));
    assert_eq!(summary.get("errors").and_then(JsonValue::as_count), Some(1));

    // The cancelled job is counted in service stats.
    let stats = json::parse_value(&replies[8]).unwrap();
    assert_eq!(
        stats
            .get("requests_cancelled")
            .and_then(JsonValue::as_count),
        Some(1)
    );

    // The sweep job's chunked values are bit-identical to the direct
    // owned-session sweep: a cancelled sibling never taints them.
    let circuit =
        ser_suite::netlist::parse_bench(&std::fs::read_to_string(&netlist).unwrap(), "batch")
            .unwrap();
    let session = AnalysisSession::new(&circuit).unwrap();
    let direct = session.sweep(1);
    let mut pos = 0usize;
    for line in &replies[..3] {
        let v = json::parse_value(line).unwrap();
        let JsonValue::Arr(sites) = v.get("sites").unwrap() else {
            panic!("sites array");
        };
        for site in sites {
            let p = site
                .get("p_sensitized")
                .and_then(JsonValue::as_f64)
                .unwrap();
            assert_eq!(p.to_bits(), direct.get(pos).p_sensitized().to_bits());
            pos += 1;
        }
    }
    assert_eq!(pos, circuit.len());

    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn batch_rejects_a_bad_job_before_running_any() {
    let netlist = write_netlist("batchbad");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    let replies = run_lines(
        &engine,
        vec![format!(
            r#"{{"v": 2, "id": "b2", "op": "batch", "jobs": [{{"id": "ok", "op": "site", "netlist": "{path}", "node": "y"}}, {{"id": "bad", "op": "site", "netlist": "{path}", "node": "no_such_node"}}]}}"#
        )],
    );
    // One error frame for the whole envelope — no per-job results, no
    // partial execution.
    assert_eq!(replies.len(), 1, "{replies:?}");
    assert_eq!(error_code(&replies[0]).as_deref(), Some("not_found"));
    let v = json::parse_value(&replies[0]).unwrap();
    assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("b2"));
    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);
    let _ = std::fs::remove_file(&netlist);
}

/// A line source the test feeds interactively; `None` through the
/// channel ends the connection.
struct ChannelLines(std::sync::mpsc::Receiver<Option<String>>);

impl LineStream for ChannelLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        Ok(self.0.recv().unwrap_or(None))
    }
}

/// A frame sink that forwards every complete line to the test thread
/// the moment it is written.
struct FrameTap {
    buf: Vec<u8>,
    out: std::sync::mpsc::Sender<String>,
}

impl Write for FrameTap {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            let _ = self
                .out
                .send(String::from_utf8(line).unwrap().trim_end().to_owned());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn cancel_races_cleanly_with_completion_and_leaves_the_session_clean() {
    // A synthesized ~1k-gate circuit: enough sweep parts that a cancel
    // synchronized on the first progress frame lands mid-flight.
    let circuit = ser_suite::gen::synthesize(&ser_suite::gen::profile("s953").unwrap(), 3);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "ser_protocol_{}_cancelrace.bench",
        std::process::id()
    ));
    std::fs::write(&path, ser_suite::netlist::write_bench(&circuit)).unwrap();
    let bench = path.to_str().unwrap().to_owned();

    let engine = Arc::new(engine());
    let (line_tx, line_rx) = std::sync::mpsc::channel::<Option<String>>();
    let (frame_tx, frame_rx) = std::sync::mpsc::channel::<String>();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            engine
                .serve_connection(Connection {
                    lines: Box::new(ChannelLines(line_rx)),
                    sink: FrameSink::new(FrameTap {
                        buf: Vec::new(),
                        out: frame_tx,
                    }),
                    peer: "race-a".to_owned(),
                })
                .expect("in-memory I/O");
        })
    };

    line_tx
        .send(Some(format!(
            r#"{{"v": 2, "id": "big", "op": "sweep", "netlist": "{bench}", "top": 0, "progress": true}}"#
        )))
        .unwrap();
    // Deterministic synchronization: wait for the sweep to prove it is
    // running (first progress frame), then cancel from a second
    // connection. No sleeps anywhere.
    let mut seen = Vec::new();
    loop {
        let frame = frame_rx.recv().expect("sweep produced no frames");
        let kind = frame_kind(&frame);
        seen.push(frame);
        if kind.as_deref() == Some("progress") {
            break;
        }
        assert!(
            !matches!(kind.as_deref(), Some("result") | Some("error")),
            "finished before first progress: {seen:?}"
        );
    }
    let cancel_replies = run_lines(
        &engine,
        vec![r#"{"v": 2, "id": "c", "op": "cancel", "target": "big"}"#.to_owned()],
    );
    let v = json::parse_value(&cancel_replies[0]).unwrap();
    // Found unless the sweep won the race and already deregistered;
    // either way the frame is well-formed and nothing hangs.
    let found = matches!(v.get("found"), Some(&JsonValue::Bool(true)));

    line_tx.send(None).unwrap();
    drop(line_tx);
    let mut terminal = None;
    for frame in frame_rx.iter() {
        let kind = frame_kind(&frame);
        if matches!(kind.as_deref(), Some("result") | Some("error")) {
            terminal = Some(frame);
        }
    }
    server.join().unwrap();
    let terminal = terminal.expect("sweep must answer with a terminal frame");
    match frame_kind(&terminal).as_deref() {
        Some("error") => {
            assert_eq!(error_code(&terminal).as_deref(), Some("cancelled"));
            assert!(found, "an in-flight sweep is registered until it ends");
        }
        Some("result") => {} // completion won the race — equally legal
        other => panic!("unexpected terminal frame {other:?}: {terminal}"),
    }

    // Invariants either way: permit released, registry empty.
    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);

    // The warm session is untouched: the same sweep re-issued now is
    // bit-identical to the same request served by a fresh engine.
    let rerun = format!(
        r#"{{"v": 2, "id": "r", "op": "sweep", "netlist": "{bench}", "top": 0, "chunk_sites": 4096}}"#
    );
    let warm = run_lines(&engine, vec![rerun.clone()]);
    let fresh_engine = engine_with(EngineConfig::default());
    let fresh = run_lines(&fresh_engine, vec![rerun]);
    let chunk_of = |replies: &[String]| -> String {
        let line = replies
            .iter()
            .find(|l| frame_kind(l).as_deref() == Some("chunk"))
            .unwrap_or_else(|| panic!("no chunk frame: {replies:?}"))
            .clone();
        line
    };
    assert_eq!(
        chunk_of(&warm),
        chunk_of(&fresh),
        "post-cancel sweep differs"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancel_mid_sweep_on_s9234_aborts_promptly_and_leaves_the_session_warm() {
    // The acceptance circuit: ~5.8k sites means the sweep runs for
    // seconds in debug builds, so — unlike the race test above — the
    // cancel *must* win, and the terminal frame must be the
    // `cancelled` error. Latency from cancel to that frame is a couple
    // of part boundaries (~ms at 4-site parts; the release-mode
    // `service_bench` tracks the <50 ms wire contract as
    // `cancel_latency_ms`); the bound here is deliberately loose so a
    // loaded CI host cannot flake it, while still proving the abort
    // beat the multi-second uncancelled run by an order of magnitude.
    let circuit = ser_suite::gen::synthesize(&ser_suite::gen::profile("s9234").unwrap(), 1);
    let mut path = std::env::temp_dir();
    path.push(format!("ser_protocol_{}_s9234.bench", std::process::id()));
    std::fs::write(&path, ser_suite::netlist::write_bench(&circuit)).unwrap();
    let bench = path.to_str().unwrap().to_owned();

    let engine = Arc::new(engine());
    let (line_tx, line_rx) = std::sync::mpsc::channel::<Option<String>>();
    let (frame_tx, frame_rx) = std::sync::mpsc::channel::<String>();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            engine
                .serve_connection(Connection {
                    lines: Box::new(ChannelLines(line_rx)),
                    sink: FrameSink::new(FrameTap {
                        buf: Vec::new(),
                        out: frame_tx,
                    }),
                    peer: "s9234-a".to_owned(),
                })
                .expect("in-memory I/O");
        })
    };

    line_tx
        .send(Some(format!(
            r#"{{"v": 2, "id": "big", "op": "sweep", "netlist": "{bench}", "top": 0, "progress": true}}"#
        )))
        .unwrap();
    loop {
        let frame = frame_rx.recv().expect("sweep produced no frames");
        match frame_kind(&frame).as_deref() {
            Some("progress") => break,
            Some("result") | Some("error") => panic!("finished before first progress: {frame}"),
            _ => {}
        }
    }
    let t = std::time::Instant::now();
    let cancel_replies = run_lines(
        &engine,
        vec![r#"{"v": 2, "id": "c", "op": "cancel", "target": "big"}"#.to_owned()],
    );
    let v = json::parse_value(&cancel_replies[0]).unwrap();
    assert!(
        matches!(v.get("found"), Some(&JsonValue::Bool(true))),
        "a seconds-long sweep is still registered: {}",
        cancel_replies[0]
    );
    let terminal = loop {
        let frame = frame_rx.recv().expect("cancelled sweep must answer");
        if matches!(
            frame_kind(&frame).as_deref(),
            Some("result") | Some("error")
        ) {
            break frame;
        }
    };
    let latency = t.elapsed();
    assert_eq!(
        frame_kind(&terminal).as_deref(),
        Some("error"),
        "{terminal}"
    );
    assert_eq!(error_code(&terminal).as_deref(), Some("cancelled"));
    assert!(
        latency < std::time::Duration::from_millis(1000),
        "cancel took {latency:?} to land"
    );
    line_tx.send(None).unwrap();
    drop(line_tx);
    server.join().unwrap();
    assert_eq!(engine.inflight_active(), 0);
    assert_eq!(engine.cancel_registrations(), 0);

    // The warm session is untouched: a single-site request now answers
    // bit-identically to a direct in-process session.
    let replies = run_lines(
        &engine,
        vec![format!(
            r#"{{"v": 2, "id": "w", "op": "site", "netlist": "{bench}", "node": "{}"}}"#,
            circuit.node(circuit.node_ids().next().unwrap()).name()
        )],
    );
    assert!(
        replies[0].contains("\"warm\": true"),
        "cancel evicted the session: {}",
        replies[0]
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn error_paths_never_leak_permits_or_registrations() {
    let netlist = write_netlist("permits");
    let path = netlist.to_str().unwrap();
    let engine = engine();
    for line in [
        // Load failure.
        r#"{"v": 2, "id": "p0", "op": "sweep", "netlist": "/nonexistent/x.bench"}"#.to_owned(),
        // Name-resolution failure.
        format!(r#"{{"v": 2, "id": "p1", "op": "site", "netlist": "{path}", "node": "ghost"}}"#),
        // Expired deadline.
        format!(
            r#"{{"v": 2, "id": "p2", "op": "site", "netlist": "{path}", "node": "y", "deadline_ms": 0}}"#
        ),
        // Parse failure.
        r#"{"v": 2, "op": "site"}"#.to_owned(),
        // Success for contrast.
        format!(r#"{{"v": 2, "id": "p3", "op": "site", "netlist": "{path}", "node": "y"}}"#),
        // Batch rejected up front.
        format!(
            r#"{{"v": 2, "id": "p4", "op": "batch", "jobs": [{{"op": "site", "netlist": "{path}", "node": "ghost"}}]}}"#
        ),
    ] {
        let replies = run_lines(&engine, vec![line.clone()]);
        assert!(!replies.is_empty(), "no reply to {line}");
        assert_eq!(engine.inflight_active(), 0, "permit leaked by {line}");
        assert_eq!(
            engine.cancel_registrations(),
            0,
            "registration leaked by {line}"
        );
    }
    let _ = std::fs::remove_file(&netlist);
}
