//! SCOAP testability vs EPP-based vulnerability: the classic structural
//! metric and the paper's probabilistic one should broadly agree on
//! *which* nodes are exposed — that agreement (and where it breaks) is
//! the reason an accurate, cheap P_sensitized is useful at all.

use ser_suite::epp::CircuitSerAnalysis;
use ser_suite::gen::{iscas89_like, RandomDag};
use ser_suite::netlist::{Circuit, Scoap, SCOAP_INFINITY};

/// Spearman rank correlation between two equally-long value slices.
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite"));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let n = xs.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let cov: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = rx.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = ry.iter().map(|b| (b - my) * (b - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

/// Collects (negated observability, P_sensitized) pairs over gates.
fn paired_metrics(circuit: &Circuit) -> (Vec<f64>, Vec<f64>) {
    let scoap = Scoap::compute(circuit).unwrap();
    let outcome = CircuitSerAnalysis::new().run(circuit).unwrap();
    let mut neg_co = Vec::new();
    let mut p_sens = Vec::new();
    for (id, node) in circuit.iter() {
        if !node.kind().is_logic() {
            continue;
        }
        let co = scoap.co(id);
        // Unobservable nodes: pin at the bottom of both rankings.
        let co_metric = if co >= SCOAP_INFINITY {
            -1e9
        } else {
            -f64::from(co)
        };
        neg_co.push(co_metric);
        p_sens.push(outcome.site(id).p_sensitized());
    }
    (neg_co, p_sens)
}

#[test]
fn easy_to_observe_correlates_with_sensitized_on_dags() {
    // Aggregate correlation across seeds; individual circuits vary.
    let mut total = 0.0;
    let seeds = 6u64;
    for seed in 0..seeds {
        let c = RandomDag::new(12, 60).with_reconvergence(0.4).build(seed);
        let (neg_co, p_sens) = paired_metrics(&c);
        total += spearman(&neg_co, &p_sens);
    }
    let mean_rho = total / seeds as f64;
    assert!(
        mean_rho > 0.3,
        "SCOAP observability should correlate with P_sensitized, rho = {mean_rho}"
    );
}

#[test]
fn correlates_on_synthetic_benchmark() {
    let c = iscas89_like("s344").unwrap();
    let (neg_co, p_sens) = paired_metrics(&c);
    let rho = spearman(&neg_co, &p_sens);
    assert!(rho > 0.2, "s344-like: rho = {rho}");
}

#[test]
fn unobservable_agrees_exactly() {
    // Where SCOAP says "infinite observability cost", EPP must say
    // P_sensitized = 0 — the two theories coincide at the boundary.
    let c = RandomDag::new(8, 30).build(3);
    let scoap = Scoap::compute(&c).unwrap();
    let outcome = CircuitSerAnalysis::new().run(&c).unwrap();
    for id in c.node_ids() {
        if scoap.co(id) >= SCOAP_INFINITY {
            assert_eq!(
                outcome.site(id).p_sensitized(),
                0.0,
                "node {id}: SCOAP-unobservable but EPP-sensitized"
            );
        }
        if outcome.site(id).p_sensitized() > 0.0 {
            assert!(
                scoap.co(id) < SCOAP_INFINITY,
                "node {id}: EPP-sensitized but SCOAP-unobservable"
            );
        }
    }
}

#[test]
fn spearman_self_test() {
    let xs = [1.0, 2.0, 3.0, 4.0];
    assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-12);
    let ys = [4.0, 3.0, 2.0, 1.0];
    assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
}
