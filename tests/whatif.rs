//! The what-if engine's one non-negotiable contract: after any
//! sequence of incremental edits, the spliced state is bit-for-bit the
//! state a from-scratch analysis of the edited circuit would produce.
//! Enforced here over random DAGs and sequential circuits, random edit
//! sequences (TMR, kind swap, input change), and 1 vs N threads.

use proptest::prelude::*;
use ser_suite::epp::{AnalysisSession, Edit, WhatIfSession};
use ser_suite::gen::{lfsr, s27, RandomDag};
use ser_suite::netlist::{Circuit, GateKind, NodeId};
use ser_suite::sp::InputProbs;

/// Picks the `i`-th TMR-able gate (cyclically) — deterministic from
/// the raw pick, valid for any circuit with at least one logic gate.
fn pick_gate(c: &Circuit, raw: usize) -> Option<NodeId> {
    let gates: Vec<NodeId> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_logic())
        .collect();
    if gates.is_empty() {
        None
    } else {
        Some(gates[raw % gates.len()])
    }
}

/// Decodes one raw `(op, pick, knob)` triple into an applicable edit.
fn decode_edit(c: &Circuit, op: u8, pick: usize, knob: u64) -> Option<Edit> {
    match op % 3 {
        0 => pick_gate(c, pick).map(Edit::Tmr),
        1 => {
            let node = pick_gate(c, pick)?;
            let kinds = [
                GateKind::And,
                GateKind::Or,
                GateKind::Nand,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ];
            let kind = kinds[knob as usize % kinds.len()];
            if kind.arity_ok(c.node(node).fanin().len()) {
                Some(Edit::SwapKind(node, kind))
            } else {
                None
            }
        }
        _ => {
            // A fresh assignment: new default plus one override on a
            // (cyclically) picked primary input.
            let default = 0.05 + (knob % 19) as f64 / 20.0;
            let inputs: Vec<NodeId> = c
                .node_ids()
                .filter(|&id| c.node(id).kind() == GateKind::Input)
                .collect();
            let mut probs = InputProbs::uniform(default);
            if !inputs.is_empty() {
                probs = probs.with(inputs[pick % inputs.len()], (knob % 7) as f64 / 8.0);
            }
            Some(Edit::SetInputs(probs))
        }
    }
}

/// Applies a raw edit script and checks the oracle after every step,
/// then unwinds via revert and checks the base state survived intact.
fn check_script(circuit: Circuit, script: &[(u8, usize, u64)], threads: usize) {
    let session = AnalysisSession::new(circuit).expect("base session compiles");
    let base_results = session.epp().sweep(threads, session.workspace_pool());
    let mut wf = WhatIfSession::new(session, threads);
    assert_eq!(
        *wf.results().as_ref(),
        base_results,
        "base cache equals a direct sweep"
    );

    let mut applied = 0usize;
    for &(op, pick, knob) in script {
        let Some(edit) = decode_edit(wf.circuit(), op, pick, knob) else {
            continue;
        };
        let before = wf.total_ser();
        let Ok(outcome) = wf.apply(edit) else {
            // Invalid for this circuit (e.g. re-TMR of a hardened gate
            // collides on replica names): the state must be untouched.
            assert_eq!(wf.total_ser().to_bits(), before.to_bits());
            continue;
        };
        applied += 1;
        assert_eq!(outcome.depth, wf.depth());
        assert_eq!(outcome.total_sites, wf.circuit().len());
        assert_eq!(
            outcome.dirty_sites,
            outcome.resweep_planned + outcome.resweep_reference,
            "every dirty site is re-swept in exactly one tier"
        );
        assert_eq!(outcome.deltas.len(), outcome.dirty_sites);

        let (full, full_total) = wf.full_recompute().expect("oracle compiles");
        assert_eq!(
            *wf.results().as_ref(),
            full,
            "incremental sweep differs from scratch after edit {applied}"
        );
        assert_eq!(
            wf.total_ser().to_bits(),
            full_total.to_bits(),
            "incremental total differs from scratch after edit {applied}"
        );
    }

    for _ in 0..applied {
        assert!(wf.revert().is_some());
    }
    assert!(wf.revert().is_none(), "base cannot be reverted");
    assert_eq!(
        *wf.results().as_ref(),
        base_results,
        "unwinding restores the base results bitwise"
    );
}

fn script_strategy() -> impl Strategy<Value = Vec<(u8, usize, u64)>> {
    proptest::collection::vec((0u8..255, 0usize..64, 0u64..1_000), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random combinational DAGs, random edit scripts, single thread.
    #[test]
    fn whatif_matches_oracle_on_dags(
        (inputs, gates, reconv, seed) in (2usize..6, 4usize..24, 0.0f64..1.0, 0u64..500),
        script in script_strategy(),
    ) {
        let c = RandomDag::new(inputs, gates)
            .with_reconvergence(reconv)
            .build(seed);
        check_script(c, &script, 1);
    }

    /// Same contract under a multi-threaded sweep schedule.
    #[test]
    fn whatif_matches_oracle_multithreaded(
        (inputs, gates, seed) in (2usize..6, 4usize..24, 0u64..500),
        script in script_strategy(),
    ) {
        let c = RandomDag::new(inputs, gates).with_reconvergence(0.5).build(seed);
        check_script(c, &script, 4);
    }

    /// Sequential circuits: the SP leg falls back to the fixed-point
    /// scratch compute, and cones clip at flip-flops.
    #[test]
    fn whatif_matches_oracle_sequential(
        pick in 0usize..3,
        script in script_strategy(),
    ) {
        let taps: &[&[usize]] = &[&[1, 3], &[2, 5], &[1, 2, 4]];
        check_script(lfsr(taps[pick]), &script, 2);
    }
}

/// A deterministic end-to-end pass on s27 covering all three edit
/// kinds at depth 3 — the shape the service's advise loop produces.
#[test]
fn whatif_s27_all_edit_kinds_stacked() {
    let c = s27();
    let session = AnalysisSession::new(c).expect("s27 compiles");
    let mut wf = WhatIfSession::new(session, 2);

    let gate = pick_gate(wf.circuit(), 0).expect("s27 has gates");
    let gate_name = wf.circuit().node(gate).name().to_owned();
    let o1 = wf.apply(Edit::Tmr(gate)).expect("tmr applies");
    assert!(o1.dirty_sites > 0);
    assert_eq!(
        o1.deltas.iter().filter(|d| d.old_p.is_none()).count(),
        6,
        "one TMR edit introduces exactly 6 new sites (3 replicas + voter tree internals)"
    );
    assert!(
        wf.circuit().find(&format!("{gate_name}__r0")).is_some(),
        "replica gates exist in the edited circuit"
    );

    let swap_target = pick_gate(wf.circuit(), 3).expect("gates remain");
    let kind = if wf.circuit().node(swap_target).kind() == GateKind::And {
        GateKind::Or
    } else {
        GateKind::And
    };
    wf.apply(Edit::SwapKind(swap_target, kind))
        .expect("swap applies");
    wf.apply(Edit::SetInputs(InputProbs::uniform(0.25)))
        .expect("inputs apply");

    let (full, full_total) = wf.full_recompute().expect("oracle compiles");
    assert_eq!(*wf.results().as_ref(), full);
    assert_eq!(wf.total_ser().to_bits(), full_total.to_bits());
    assert_eq!(wf.depth(), 3);

    assert!(wf.revert().is_some());
    assert!(wf.revert().is_some());
    assert_eq!(wf.total_ser().to_bits(), o1.total.to_bits());
}
