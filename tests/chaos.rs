//! Chaos tests: the full service stack driven through deterministic
//! fault schedules — torn byte-level writes, disconnects planted at
//! every frame boundary, injected read errors, cancel-vs-complete
//! races — asserting the three robustness invariants:
//!
//! 1. the server never hangs (every `serve` call here returns),
//! 2. nothing leaks (no in-flight permit, no cancel registration
//!    survives a faulted connection),
//! 3. survivors are untouched (a clean connection's frames are
//!    bit-identical to the same request on an unfaulted engine, even
//!    while a sibling connection is being torn apart).
//!
//! Every schedule is seeded and fixed: a failure here is a
//! reproducer, not a flake. The seed matrix below is the one CI runs
//! under both `SER_SIMD` lanes.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ser_suite::service::json::{self, JsonValue};
use ser_suite::service::{
    serve, ChaosSchedule, ChaosTransport, Connection, EngineConfig, FrameSink, LineStream,
    ProtocolEngine, SerService, SerServiceConfig, Transport,
};

/// The fixed fault-seed matrix (also exercised by the CI chaos step).
const SEEDS: [u64; 3] = [11, 0xA5A5, 987_654_321];

// ---------------------------------------------------------------------
// Harness: scripted in-memory connections behind a real Transport
// ---------------------------------------------------------------------

struct ScriptLines(std::vec::IntoIter<String>);

impl LineStream for ScriptLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        Ok(self.0.next())
    }
}

#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A transport that yields each scripted connection once, then ends.
struct ScriptTransport(std::vec::IntoIter<Connection>);

impl Transport for ScriptTransport {
    fn accept(&mut self) -> io::Result<Option<Connection>> {
        Ok(self.0.next())
    }
}

fn conn(lines: Vec<String>) -> (Connection, Arc<Mutex<Vec<u8>>>) {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    (
        Connection {
            lines: Box::new(ScriptLines(lines.into_iter())),
            sink: FrameSink::new(Capture(Arc::clone(&buffer))),
            peer: "chaos".to_owned(),
        },
        buffer,
    )
}

fn engine() -> Arc<ProtocolEngine> {
    Arc::new(ProtocolEngine::new(
        Arc::new(SerService::new(SerServiceConfig {
            max_sessions: 4,
            threads: 2,
            sweep_batch_sites: 4,
            max_sweep_responses: 8,
            plan_cache_dir: None,
            plan_cache_max_bytes: None,
            ..SerServiceConfig::default()
        })),
        EngineConfig::default(),
    ))
}

fn write_netlist(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ser_chaos_{}_{name}.bench", std::process::id()));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
    )
    .unwrap();
    path
}

fn lines_of(buffer: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    let bytes = buffer.lock().unwrap().clone();
    // Chaos may tear a connection mid-frame, leaving a trailing
    // fragment and possibly a split multi-byte character; lossy is the
    // honest read of what a client would have seen.
    String::from_utf8_lossy(&bytes)
        .lines()
        .map(str::to_owned)
        .collect()
}

fn frame_kind(line: &str) -> Option<String> {
    json::parse_value(line)
        .ok()?
        .get("frame")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
}

/// The deterministic frames of a reply: chunk frames carry only wire
/// values (no wall-clock field), so they compare bit-for-bit.
fn chunk_frames(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| frame_kind(l).as_deref() == Some("chunk"))
        .cloned()
        .collect()
}

/// Serves `conns` (the first `schedules.len()` of them faulted) on one
/// engine and asserts the no-leak invariants afterwards.
fn serve_with_faults(
    engine: &Arc<ProtocolEngine>,
    conns: Vec<Connection>,
    schedules: Vec<ChaosSchedule>,
) {
    let mut transport = ChaosTransport::new(ScriptTransport(conns.into_iter()), schedules);
    serve(&mut transport, engine).expect("serve survives chaos");
    assert_eq!(engine.inflight_active(), 0, "leaked in-flight permit");
    assert_eq!(engine.cancel_registrations(), 0, "leaked cancel token");
}

// ---------------------------------------------------------------------
// Write faults
// ---------------------------------------------------------------------

#[test]
fn disconnects_at_every_frame_boundary_never_leak_or_taint_survivors() {
    let netlist = write_netlist("boundaries");
    let path = netlist.to_str().unwrap();
    let request = format!(
        r#"{{"v": 2, "id": "q", "op": "sweep", "netlist": "{path}", "top": 0, "chunk_sites": 2}}"#
    );

    // Reference reply from an unfaulted engine: 3 chunk frames + result.
    let reference = {
        let engine = engine();
        let (c, buffer) = conn(vec![request.clone()]);
        serve_with_faults(&engine, vec![c], Vec::new());
        lines_of(&buffer)
    };
    assert_eq!(reference.len(), 4, "{reference:?}");
    let reference_chunks = chunk_frames(&reference);
    assert_eq!(reference_chunks.len(), 3);

    // Every frame boundary (and frame start) gets a connection whose
    // write side dies exactly there; one clean survivor rides along.
    let mut boundaries = vec![0u64];
    let mut total = 0u64;
    for line in &reference {
        total += line.len() as u64 + 1;
        boundaries.push(total);
    }
    for seed in SEEDS {
        let engine = engine();
        let mut conns = Vec::new();
        let mut schedules = Vec::new();
        let mut buffers = Vec::new();
        for &at in &boundaries {
            let (c, buffer) = conn(vec![request.clone()]);
            conns.push(c);
            buffers.push(buffer);
            schedules.push(
                ChaosSchedule::new(seed ^ at)
                    .split_writes()
                    .tear_write_after_bytes(at),
            );
        }
        let (survivor, survivor_buffer) = conn(vec![request.clone()]);
        conns.push(survivor);
        serve_with_faults(&engine, conns, schedules);

        // Faulted connections saw at most their tear budget.
        for (buffer, &at) in buffers.iter().zip(&boundaries) {
            assert!(buffer.lock().unwrap().len() as u64 <= at, "seed {seed}");
        }
        // The survivor — and a post-chaos rerun on the same warm
        // engine — are bit-identical to the reference.
        assert_eq!(
            chunk_frames(&lines_of(&survivor_buffer)),
            reference_chunks,
            "seed {seed}: survivor tainted"
        );
        let (rerun, rerun_buffer) = conn(vec![request.clone()]);
        serve_with_faults(&engine, vec![rerun], Vec::new());
        assert_eq!(
            chunk_frames(&lines_of(&rerun_buffer)),
            reference_chunks,
            "seed {seed}: warm session tainted"
        );
    }
    let _ = std::fs::remove_file(&netlist);
}

#[test]
fn byte_shredded_writes_deliver_frames_intact() {
    let netlist = write_netlist("shred");
    let path = netlist.to_str().unwrap();
    // The error message for a bad chunk_sites contains `≥` — a
    // multi-byte character the splitter will tear across writes.
    let lines = vec![
        format!(r#"{{"v": 2, "id": "e", "op": "sweep", "netlist": "{path}", "chunk_sites": 0}}"#),
        format!(
            r#"{{"v": 2, "id": "q", "op": "sweep", "netlist": "{path}", "top": 0, "chunk_sites": 2}}"#
        ),
    ];
    let reference = {
        let engine = engine();
        let (c, buffer) = conn(lines.clone());
        serve_with_faults(&engine, vec![c], Vec::new());
        lines_of(&buffer)
    };
    for seed in SEEDS {
        let engine = engine();
        let (c, buffer) = conn(lines.clone());
        serve_with_faults(
            &engine,
            vec![c],
            vec![ChaosSchedule::new(seed).split_writes()],
        );
        let shredded = lines_of(&buffer);
        assert_eq!(shredded.len(), reference.len(), "seed {seed}");
        // Every frame reassembles byte-perfect despite 1–3-byte
        // writes, including the multi-byte `≥` in the error frame.
        assert!(shredded[0].contains('≥'), "seed {seed}: {}", shredded[0]);
        assert_eq!(
            chunk_frames(&shredded),
            chunk_frames(&reference),
            "seed {seed}"
        );
    }
    let _ = std::fs::remove_file(&netlist);
}

// ---------------------------------------------------------------------
// Read faults
// ---------------------------------------------------------------------

#[test]
fn read_errors_and_early_eofs_close_cleanly() {
    let netlist = write_netlist("readfault");
    let path = netlist.to_str().unwrap();
    let request = |id: &str| {
        format!(
            r#"{{"v": 2, "id": "{id}", "op": "sweep", "netlist": "{path}", "top": 0, "chunk_sites": 2}}"#
        )
    };
    for seed in SEEDS {
        for cut in 0..3usize {
            let engine = engine();
            // One connection dies with a reset after `cut` lines, one
            // hangs up early, one stays clean.
            let (reset, _) = conn((0..3).map(|i| request(&format!("r{i}"))).collect());
            let (eof, eof_buffer) = conn((0..3).map(|i| request(&format!("d{i}"))).collect());
            let (clean, clean_buffer) = conn(vec![request("ok")]);
            serve_with_faults(
                &engine,
                vec![reset, eof, clean],
                vec![
                    ChaosSchedule::new(seed).read_error_after_lines(cut),
                    ChaosSchedule::new(seed).disconnect_after_lines(cut),
                ],
            );
            // The early-EOF connection answered exactly the lines that
            // got through (4 frames each), then stopped.
            assert_eq!(
                lines_of(&eof_buffer).len(),
                4 * cut,
                "seed {seed} cut {cut}"
            );
            let clean_lines = lines_of(&clean_buffer);
            assert_eq!(clean_lines.len(), 4, "seed {seed} cut {cut}");
            assert_eq!(
                frame_kind(clean_lines.last().unwrap()).as_deref(),
                Some("result")
            );
        }
    }
    let _ = std::fs::remove_file(&netlist);
}

// ---------------------------------------------------------------------
// Cancel-vs-complete races under chaos
// ---------------------------------------------------------------------

#[test]
fn cancel_races_under_chaos_leave_no_leaks_and_clean_survivors() {
    // A ~1k-gate circuit so the raced sweep has real work to cancel.
    let circuit = ser_suite::gen::synthesize(&ser_suite::gen::profile("s953").unwrap(), 5);
    let mut path = std::env::temp_dir();
    path.push(format!("ser_chaos_{}_race.bench", std::process::id()));
    std::fs::write(&path, ser_suite::netlist::write_bench(&circuit)).unwrap();
    let bench = path.to_str().unwrap();
    let sweep = format!(
        r#"{{"v": 2, "id": "raced", "op": "sweep", "netlist": "{bench}", "top": 0, "chunk_sites": 4096}}"#
    );

    let reference = {
        let engine = engine();
        let (c, buffer) = conn(vec![sweep.clone()]);
        serve_with_faults(&engine, vec![c], Vec::new());
        chunk_frames(&lines_of(&buffer))
    };

    for seed in SEEDS {
        let engine = engine();
        // A: the raced sweep, its write side shredded. B: a barrage of
        // cancels for A's id (connections run concurrently under
        // `serve`, so the cancel lands at a seed-and-scheduler-chosen
        // point: before, during, or after the sweep). C: a clean
        // survivor.
        let (a, a_buffer) = conn(vec![sweep.clone()]);
        let (b, b_buffer) = conn(
            (0..8)
                .map(|i| format!(r#"{{"v": 2, "id": "c{i}", "op": "cancel", "target": "raced"}}"#))
                .collect(),
        );
        let (c, c_buffer) = conn(vec![sweep.clone()]);
        serve_with_faults(
            &engine,
            vec![a, b, c],
            vec![ChaosSchedule::new(seed).split_writes()],
        );

        // Every cancel answered with a well-formed result frame,
        // whether or not it found its target.
        let cancels = lines_of(&b_buffer);
        assert_eq!(cancels.len(), 8, "seed {seed}");
        for line in &cancels {
            assert_eq!(frame_kind(line).as_deref(), Some("result"), "seed {seed}");
        }
        // A ended in exactly one terminal frame: a full result or a
        // `cancelled` error. Both are legal; hanging or leaking is not.
        let a_lines = lines_of(&a_buffer);
        let last = a_lines.last().expect("raced sweep answered");
        match frame_kind(last).as_deref() {
            Some("result") => assert_eq!(chunk_frames(&a_lines), reference, "seed {seed}"),
            Some("error") => {
                let v = json::parse_value(last).unwrap();
                assert_eq!(
                    v.get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(JsonValue::as_str),
                    Some("cancelled"),
                    "seed {seed}: {last}"
                );
            }
            other => panic!("seed {seed}: unexpected terminal frame {other:?}: {last}"),
        }
        // The survivor and a warm rerun are never tainted by the race.
        assert_eq!(chunk_frames(&lines_of(&c_buffer)), reference, "seed {seed}");
        let (rerun, rerun_buffer) = conn(vec![sweep.clone()]);
        serve_with_faults(&engine, vec![rerun], Vec::new());
        assert_eq!(
            chunk_frames(&lines_of(&rerun_buffer)),
            reference,
            "seed {seed}: warm session tainted by cancel race"
        );
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Plan-cache corruption
// ---------------------------------------------------------------------

#[test]
fn corrupt_plan_cache_recompiles_silently_with_identical_results() {
    let circuit = ser_suite::gen::synthesize(&ser_suite::gen::profile("s953").unwrap(), 7);
    let mut bench = std::env::temp_dir();
    bench.push(format!("ser_chaos_{}_cache.bench", std::process::id()));
    std::fs::write(&bench, ser_suite::netlist::write_bench(&circuit)).unwrap();
    let mut cache_dir = std::env::temp_dir();
    cache_dir.push(format!("ser_chaos_{}_plancache", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let request = format!(
        r#"{{"v": 2, "id": "q", "op": "sweep", "netlist": "{}", "top": 0, "chunk_sites": 4096}}"#,
        bench.to_str().unwrap()
    );
    let cached_engine = || {
        Arc::new(ProtocolEngine::new(
            Arc::new(SerService::new(SerServiceConfig {
                max_sessions: 4,
                threads: 2,
                plan_cache_dir: Some(cache_dir.clone()),
                ..SerServiceConfig::default()
            })),
            EngineConfig::default(),
        ))
    };
    let run = |engine: &Arc<ProtocolEngine>| -> Vec<String> {
        let (c, buffer) = conn(vec![request.clone()]);
        serve_with_faults(engine, vec![c], Vec::new());
        chunk_frames(&lines_of(&buffer))
    };

    // First process compiles and persists the plan.
    let reference = run(&cached_engine());
    let entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .expect("plan cache dir")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!entries.is_empty(), "sweep should persist a plan entry");

    // Crash-tear every entry (truncate to half), as a dirty shutdown
    // would. The next process must not error, must not serve garbage —
    // it recompiles and the results are bit-identical.
    for path in &entries {
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    }
    let recompiled = cached_engine();
    assert_eq!(run(&recompiled), reference, "torn cache changed results");
    let stats = recompiled.inflight_active(); // engine invariant helper reuse
    assert_eq!(stats, 0);

    // And garbage bytes (not just truncation) degrade the same way.
    for path in &entries {
        std::fs::write(path, b"not a plan cache entry at all").unwrap();
    }
    assert_eq!(
        run(&cached_engine()),
        reference,
        "garbage cache changed results"
    );

    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_file(&bench);
}
