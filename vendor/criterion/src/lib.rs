//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with a deliberately simple
//! runner: a short warm-up, then timed batches, reporting the mean
//! nanoseconds per iteration. No statistics, plots or baselines.
//!
//! Passing `--test` (as `cargo test --benches` does) runs each closure
//! once and skips timing, so benches double as smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.test_mode, self.sample_size, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured batch count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput so the report can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(
            &label,
            self.criterion.test_mode,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(
            &label,
            self.criterion.test_mode,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; call [`iter`](Bencher::iter) with
/// the code under test.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    /// Iterations per timed batch (tuned during warm-up).
    batch: u64,
    /// Accumulated (time, iterations) over measured batches.
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f`, running it in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.total = Duration::from_nanos(1);
            return;
        }
        // Warm-up: find a batch size that runs for ~1ms, capped so a
        // whole bench stays well under a second.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.batch = batch;
                break;
            }
            batch *= 4;
        }
        let t = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.total += t.elapsed();
        self.iters += self.batch;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    test_mode: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        test_mode,
        batch: 1,
        total: Duration::ZERO,
        iters: 0,
    };
    if test_mode {
        f(&mut b);
        println!("test {label} ... ok (bench smoke)");
        return;
    }
    // `sample_size` batches by re-invoking the closure; criterion's
    // statistical machinery is intentionally not reproduced.
    let samples = sample_size.clamp(1, 20);
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{label:<40} (no iterations)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<40} {ns:>12.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns * 1e-9) / (1 << 20) as f64;
            println!("{label:<40} {ns:>12.1} ns/iter {rate:>12.1} MiB/s");
        }
        None => println!("{label:<40} {ns:>12.1} ns/iter"),
    }
}

/// Declares a benchmark group function (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("smoke/group");
        group.sample_size(2);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("named", |b| b.iter(|| black_box(1u8)));
        group.finish();
    }

    #[test]
    fn driver_runs_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 2,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn driver_times_in_bench_mode() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 1,
        };
        c.bench_function("timed/nop", |b| b.iter(|| black_box(0u8)));
    }
}
