//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the pieces of `rand` 0.8 it actually uses are reimplemented here:
//! [`rngs::SmallRng`], the [`Rng`]/[`SeedableRng`] traits
//! (`gen`, `gen_bool`, `gen_range`, `seed_from_u64`) and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets, though the
//! exact output streams are not guaranteed to match any particular
//! `rand` release. All consumers in this workspace only rely on
//! *determinism given a seed* and on statistical quality, never on
//! specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words. The object-safe core every generic
/// helper builds on (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the
/// `Standard`-distribution subset of `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a [`Rng::gen_range`] call accepts (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free Lemire-style bounded draw over `[0, bound)`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the bias below 2^-64 per draw; a rejection
    // loop removes it entirely.
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let lo = m as u64;
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256** with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Random operations on slices (the subset of
    /// `rand::seq::SliceRandom` this workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(2usize..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(2u32..=3);
            assert!((2..=3).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        // `nodes.choose(rng)` with `rng: &mut SmallRng` requires the
        // traits to compose through &mut.
        fn takes_generic<R: Rng>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = takes_generic(&mut rng);
        let r2: &mut SmallRng = &mut rng;
        let _ = takes_generic(r2);
    }
}
