//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, numeric-range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`] and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest this shim does **no shrinking** — a failing
//! case panics with the sampled inputs' debug representation (cases are
//! deterministic per test name and case index, so failures reproduce).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-run configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test, per-case RNG: seeded from the test name and
/// the case index so failures reproduce without a persistence file.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random values (the sampling half of proptest's
/// `Strategy`; no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `elem` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The everything-you-need import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the
/// sampled case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` that samples its strategies
/// `ProptestConfig::cases` times and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Wrapped(usize);

    fn wrapped() -> impl Strategy<Value = Wrapped> {
        (1usize..10).prop_map(Wrapped)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; tuples sample element-wise.
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..5, 0.0f64..1.0), c in 2u64..4) {
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((2..4).contains(&c));
        }

        /// collection::vec honours the length range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0usize..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        /// prop_flat_map produces dependent values.
        #[test]
        fn flat_map_dependency((n, v) in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n..n + 1).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        /// prop_map through a custom type works with `impl Strategy`.
        #[test]
        fn mapped_strategy(w in wrapped()) {
            prop_assert!((1..10).contains(&w.0));
            prop_assert_ne!(w.0, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::sample(&(0u64..1000), &mut crate::test_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::sample(&(0u64..1000), &mut crate::test_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
