//! Quickstart: estimate the soft error rate of a small circuit.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Parses a netlist, runs the paper's analytical EPP method, and prints
//! the per-node sensitization probabilities and the SER ranking.

use ser_suite::epp::CircuitSerAnalysis;
use ser_suite::netlist::parse_bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1-bit full adder in ISCAS .bench format.
    let source = "
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
axb  = XOR(a, b)
sum  = XOR(axb, cin)
ab   = AND(a, b)
ac   = AND(axb, cin)
cout = OR(ab, ac)
";
    let circuit = parse_bench(source, "full-adder")?;
    println!(
        "circuit `{}`: {} inputs, {} outputs, {} gates\n",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );

    // One call: signal probabilities + per-node EPP + SER model.
    let outcome = CircuitSerAnalysis::new().run(&circuit)?;

    println!("node       P_sensitized");
    println!("------------------------");
    for (id, node) in circuit.iter() {
        println!("{:<10} {:.4}", node.name(), outcome.site(id).p_sensitized());
    }

    println!("\nmost vulnerable nodes (SER ranking):");
    for entry in outcome.report().ranking().iter().take(3) {
        println!(
            "  {:<10} ser = {:.4}",
            circuit.node(entry.node).name(),
            entry.ser
        );
    }
    println!(
        "\ntotal circuit SER (unit R_SEU, P_latched): {:.4}",
        outcome.report().total()
    );
    println!("EPP sweep time: {:?}", outcome.epp_time());
    Ok(())
}
