//! Following latched errors across clock cycles — the sequential
//! extension beyond the paper's single-cycle analysis.
//!
//! ```text
//! cargo run --release --example sequential_lifetime
//! ```
//!
//! An SEU that reaches a flip-flop is not yet a failure: it may surface
//! at an output cycles later or be masked away. This example tracks
//! both, analytically (frame expansion) and by simulation, on a
//! register-feedback accumulator.

use ser_suite::epp::{multi_cycle_monte_carlo, MultiCycleEpp};
use ser_suite::gen::accumulator;
use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = accumulator(8);
    println!(
        "circuit `{}`: {} gates, {} flip-flops\n",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_dffs()
    );

    let sp = IndependentSp::new().compute(&circuit, &InputProbs::default())?;
    let mc_epp = MultiCycleEpp::new(&circuit, sp)?;

    // Strike the carry chain in the middle of the adder.
    let site = circuit.find("c3").expect("carry bit exists");
    let cycles = 6;
    let analytic = mc_epp.site(site, cycles);
    let simulated = multi_cycle_monte_carlo(&circuit, site, cycles, 20_000, 99)?;

    println!(
        "SEU at `{}`: cumulative P(error seen at an output)",
        circuit.node(site).name()
    );
    println!("cycle   analytic   simulated");
    println!("-----------------------------");
    for (k, (a, s)) in analytic.cumulative.iter().zip(&simulated).enumerate() {
        println!("{k:>5}   {a:>8.4}   {s:>9.4}");
    }
    let still = analytic.residual_corruption.iter().sum::<f64>();
    println!(
        "\nafter cycle {}: expected corrupted flip-flops still in flight = {still:.3}",
        cycles - 1
    );
    println!("(accumulator feedback never fully flushes: latched errors persist,");
    println!(" which is why single-cycle SER analysis underestimates state-heavy logic)");
    Ok(())
}
