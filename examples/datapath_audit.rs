//! Soft-error audit of arithmetic datapaths — the workload class the
//! paper's introduction motivates (logic whose SER "will be comparable
//! to that of memory elements").
//!
//! ```text
//! cargo run --release --example datapath_audit
//! ```
//!
//! Compares the analytical EPP method against the Monte-Carlo baseline
//! on three structures with very different masking behaviour:
//! a ripple-carry adder (moderate masking), a parity tree (none) and a
//! multiplexer tree (heavy masking).

use std::time::Instant;

use ser_suite::epp::CircuitSerAnalysis;
use ser_suite::gen::{mux_tree, parity_tree, ripple_carry_adder};
use ser_suite::netlist::Circuit;
use ser_suite::sim::{BitSim, MonteCarlo};

fn audit(circuit: &Circuit) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== {} ({} gates, {} outputs)",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_outputs()
    );

    let t = Instant::now();
    let outcome = CircuitSerAnalysis::new().run(circuit)?;
    let analytic_time = t.elapsed();

    // Mean P_sensitized over gates (how transparent the structure is).
    let gate_ps: Vec<f64> = circuit
        .iter()
        .filter(|(_, n)| n.kind().is_logic())
        .map(|(id, _)| outcome.site(id).p_sensitized())
        .collect();
    let mean = gate_ps.iter().sum::<f64>() / gate_ps.len() as f64;
    println!("  mean gate P_sensitized (analytical): {mean:.3}  [{analytic_time:?} for all nodes]");

    // Monte-Carlo on a handful of gates for comparison.
    let sim = BitSim::new(circuit)?;
    let mc = MonteCarlo::new(20_000).with_seed(11);
    let sample: Vec<_> = circuit
        .iter()
        .filter(|(_, n)| n.kind().is_logic())
        .map(|(id, _)| id)
        .step_by((gate_ps.len() / 8).max(1))
        .take(8)
        .collect();
    let t = Instant::now();
    let estimates = mc.estimate_sites(&sim, &sample);
    let mc_time = t.elapsed();
    let mut worst = 0.0f64;
    for (&site, est) in sample.iter().zip(&estimates) {
        worst = worst.max((outcome.site(site).p_sensitized() - est.p_sensitized).abs());
    }
    println!(
        "  MC cross-check on {} gates: max |diff| = {worst:.3}  [{mc_time:?} at 20k vectors]",
        sample.len()
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    audit(&ripple_carry_adder(16))?;
    audit(&parity_tree(64))?;
    audit(&mux_tree(6))?;
    println!("Reading: the parity tree is fully transparent (P_sens = 1 everywhere),");
    println!("the mux tree masks heavily, the adder sits in between — and the");
    println!("analytical method tracks all three regimes at a fraction of the cost.");
    Ok(())
}
