//! Close the loop the paper's conclusion draws: *identify the most
//! vulnerable components, protect them, and verify*.
//!
//! ```text
//! cargo run --release --example harden_and_verify
//! ```
//!
//! 1. rank c17's gates by SER contribution (the paper's method),
//! 2. TMR-harden the top gates,
//! 3. formally verify the hardened circuit is functionally identical
//!    (BDD equivalence checking),
//! 4. re-measure: replica upsets are outvoted (exact + Monte-Carlo),
//! 5. ...and observe a known limitation: the analytical EPP rules,
//!    blind to the voter's reconvergent correlation, overestimate the
//!    replicas' vulnerability — use the exact oracle on redundancy
//!    structures.

use ser_suite::epp::{check_equivalence, BddExactEpp, CircuitSerAnalysis, Equivalence};
use ser_suite::gen::c17;
use ser_suite::sim::{BitSim, MonteCarlo};
use ser_suite::sp::InputProbs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = c17();
    let outcome = CircuitSerAnalysis::new().run(&circuit)?;

    println!("== step 1: rank (analytical EPP)");
    let ranking = outcome.report().ranking();
    for e in ranking.iter().take(3) {
        println!(
            "  {:<6} P_sens = {:.3}",
            circuit.node(e.node).name(),
            e.p_sensitized
        );
    }
    // Protect the two most vulnerable *gates* (inputs can't be TMR'd).
    let targets: Vec<_> = ranking
        .iter()
        .filter(|e| circuit.node(e.node).kind().is_logic())
        .take(2)
        .map(|e| e.node)
        .collect();
    let names: Vec<&str> = targets.iter().map(|&n| circuit.node(n).name()).collect();
    println!("  hardening: {names:?}");

    println!("\n== step 2: transform (TMR)");
    let hardened = ser_suite::netlist::harden_tmr(&circuit, &targets)?;
    println!(
        "  {} gates -> {} gates (area cost of protection)",
        circuit.num_gates(),
        hardened.num_gates()
    );

    println!("\n== step 3: formal verification");
    match check_equivalence(&circuit, &hardened, 1 << 20)? {
        Equivalence::Equivalent => println!("  BDD check: functionally identical"),
        other => panic!("hardening broke the circuit: {other:?}"),
    }

    println!("\n== step 4: re-measure the protected gates");
    let oracle = BddExactEpp::new();
    let sim = BitSim::new(&hardened)?;
    let mc = MonteCarlo::new(50_000).with_seed(1);
    let probs = InputProbs::default();
    let analytic = CircuitSerAnalysis::new().run(&hardened)?;
    println!("  site          exact    monte-carlo   analytical-EPP");
    for &t in &targets {
        for replica in ser_suite::epp::tmr_replica_names(&circuit, t) {
            let site = hardened.find(&replica).expect("replica exists");
            let exact = oracle.site(&hardened, &probs, site)?.p_sensitized;
            let mc_est = mc.estimate_site(&sim, site).p_sensitized;
            let epp = analytic.site(site).p_sensitized();
            println!("  {replica:<12} {exact:>7.4} {mc_est:>12.4} {epp:>15.4}");
        }
    }
    println!("\nReading: exact and Monte-Carlo agree the replicas are fully");
    println!("protected (P_sens = 0). The analytical rules overestimate them —");
    println!("the voter is pure reconvergence, their documented blind spot —");
    println!("so hardening *evaluation* should use the exact oracle, while");
    println!("hardening *selection* (step 1) is where the fast method shines.");
    Ok(())
}
