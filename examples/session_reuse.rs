//! The cached `AnalysisSession` layer: compile a circuit's analysis
//! context once, drive every estimation path from it, and sweep input
//! distributions with SP-only invalidation.
//!
//! ```text
//! cargo run --release --example session_reuse
//! ```
//!
//! The session holds the per-circuit artifacts every entry point used
//! to recompute privately — topological order and positions, observe
//! points, signal probabilities, the bit-parallel simulator and the
//! per-thread scratch pool. Changing input probabilities re-derives
//! only the SP vector; everything structural survives.

use std::time::Instant;

use ser_suite::epp::{AnalysisSession, CircuitSerAnalysis, ExactEpp};
use ser_suite::gen::iscas89_like;
use ser_suite::sim::MonteCarlo;
use ser_suite::sp::InputProbs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas89_like("s1196").expect("s1196 profile exists");
    println!(
        "compiling session for `{}` ({} nodes)...",
        circuit.name(),
        circuit.len()
    );
    let t = Instant::now();
    let mut session = AnalysisSession::new(&circuit)?;
    println!(
        "  compiled in {:?} (SP portion {:?}, revision {})\n",
        t.elapsed(),
        session.sp_time(),
        session.revision()
    );

    // --- Every estimation path reads the same compiled artifacts. -----
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let analysis = CircuitSerAnalysis::new().with_threads(threads);

    let t = Instant::now();
    let outcome = analysis.run_with_session(&session);
    println!(
        "analytical sweep over {} sites ({} threads used): {:?}",
        outcome.len(),
        outcome.threads_used(),
        t.elapsed()
    );

    let top = outcome.report().ranking()[0];
    let name = circuit.node(top.node).name();
    println!(
        "most vulnerable node: `{name}` (P_sens = {:.4})",
        top.p_sensitized
    );

    // Cross-check the top node against the session's shared simulator —
    // no second topological sort, no second SP pass.
    let mc = MonteCarlo::new(20_000).with_seed(7);
    let baseline = session.monte_carlo_site(&mc, top.node);
    println!(
        "Monte-Carlo baseline at `{name}`: {:.4} (Δ = {:.4})",
        baseline.p_sensitized,
        (top.p_sensitized - baseline.p_sensitized).abs()
    );
    // The exact oracle usually needs a small cone; guard by source count.
    match session.exact_site(&ExactEpp::new(), top.node) {
        Ok(exact) => println!("exact oracle at `{name}`: {:.4}", exact.p_sensitized),
        Err(e) => println!("exact oracle skipped ({e})"),
    }

    // --- SP-only invalidation: sweep input biases. --------------------
    println!("\ninput-probability sweep (structure cached, SP re-derived):");
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let t = Instant::now();
        session.set_inputs(InputProbs::uniform(p))?;
        let sp_elapsed = t.elapsed();
        let outcome = analysis.run_with_session(&session);
        println!(
            "  p(1) = {p:.1}: total SER {:>8.3} (SP re-derivation {sp_elapsed:?}, revision {})",
            outcome.report().total(),
            session.revision()
        );
    }
    println!(
        "\nworkspace pool: {} scratch buffers served every sweep",
        session.workspace_pool().idle()
    );
    Ok(())
}
