//! The paper's Figure 1, step by step.
//!
//! ```text
//! cargo run --example figure1_walkthrough
//! ```
//!
//! An SEU strikes gate `A`; the error fans out through `E` into the
//! reconvergent paths `D` and `G` and meets (with opposite treatment of
//! polarity) at the OR gate `H`. The expected result, from the paper:
//!
//! ```text
//! P(H) = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)
//! ```

use ser_suite::epp::{EppAnalysis, PolarityMode};
use ser_suite::gen::figure1;
use ser_suite::sp::{IndependentSp, InputProbs, SpEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = figure1();
    // The figure fixes the off-path signal probabilities.
    let b = circuit.find("B").unwrap();
    let c = circuit.find("C").unwrap();
    let f = circuit.find("F").unwrap();
    let probs = InputProbs::uniform(0.5)
        .with(b, 0.2)
        .with(c, 0.3)
        .with(f, 0.7);

    let sp = IndependentSp::new().compute(&circuit, &probs)?;
    println!("signal probabilities (off-path inputs):");
    for name in ["B", "C", "F"] {
        let id = circuit.find(name).unwrap();
        println!("  SP({name}) = {:.1}", sp.get(id));
    }

    let analysis = EppAnalysis::new(&circuit, sp)?;
    let site = circuit.find("A").unwrap();
    let result = analysis.site(site);

    let h = circuit.find("H").unwrap();
    let tuple = result.arrival_at(h).expect("H is reachable from A");
    println!("\nfour-value tuple at the output H:");
    println!("  computed: P(H) = {tuple}");
    println!("  paper:    P(H) = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)");
    println!(
        "\nP_sensitized(A) = Pa(H) + Pā(H) = {:.3}",
        result.p_sensitized()
    );

    // What the polarity tracking bought us: the merged-polarity variant
    // (prior work's model) overestimates.
    let merged = analysis.site_with(site, PolarityMode::Merged);
    println!(
        "without polarity tracking the same pass would report {:.3} — \
         an overestimate of {:.0}%",
        merged.p_sensitized(),
        100.0 * (merged.p_sensitized() - result.p_sensitized()) / result.p_sensitized()
    );
    Ok(())
}
